"""Multi-tenant QoS isolation sweep: victim tail latency vs. noisy neighbour.

The fleet dispatcher multiplexes per-tenant open-loop streams onto shared
devices; without a QoS policy a single bursting tenant inflates every
other tenant's tail.  This module charts that interference and what each
:mod:`repro.fleet.qos` policy buys back, as one result family:

* **isolation curve** -- the *victim* tenants' p99 (all non-burst tenants'
  per-tenant histograms merged into one recorder) versus the adversarial
  tenant's offered-load multiplier, per fabric x placement x policy.
  Under ``none`` the curve is monotone non-decreasing; under a fair-share
  token bucket it stays bounded; under SLO admission the burst tenant's
  excess is shed outright (visible as fewer completed requests).

Every cell is an ordinary :class:`~repro.fleet.spec.FleetSpec` whose
member specs carry the QoS policy and burst clause in their digests, so
the whole grid executes as a single deduplicated
:func:`~repro.experiments.executor.execute_specs` batch and a warm-store
re-run performs zero simulations.

Calibration note: the replay clock targets ``scale.target_pressure``
(default 1.6), i.e. devices are deliberately saturated, so a meaningful
token-bucket rate is a tenant's fair share of device *capacity* --
``nominal trace rate / target_pressure`` -- not of the (already
overcommitted) offered rate.  :func:`fair_share_rate` computes it from
the materialized trace; :func:`suggest_token_bucket` turns it into a
canonical policy string.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config.ssd_config import NS_PER_S, DesignKind
from repro.errors import ConfigurationError
from repro.experiments.executor import execute_specs
from repro.experiments.faults import SWEEP_DESIGNS
from repro.experiments.spec import (
    ExperimentScale,
    build_config,
    trace_for,
)
from repro.fleet.placement import placement_names
from repro.fleet.qos import canonical_qos
from repro.fleet.run import merge_tenant_payloads, roll_up
from repro.fleet.spec import FleetSpec, make_fleet_spec
from repro.sim.stats import LatencyRecorder

#: Offered-load multipliers of the adversarial tenant (1 = fair share).
DEFAULT_BURST_LEVELS = (1, 2, 4, 8)

#: The tenant that misbehaves; every other tenant is a victim.
DEFAULT_BURST_TENANT = 0

#: Fleet shape of the default sweep: enough devices that placement
#: matters, enough tenants that one bursting stream has three victims.
DEFAULT_DEVICES = 2
DEFAULT_TENANTS = 4

#: The read-dominated Table-2 trace the fleet experiments standardise on.
DEFAULT_WORKLOAD = "hm_0"

#: Token-bucket depth of the suggested policy: deep enough to pass the
#: victims' own arrival bursts, shallow against a sustained 2x+ overload.
DEFAULT_BUCKET_BURST = 16.0

#: SLO admission defaults: a predicted-wait target in the fluid model's
#: terms (see :class:`~repro.fleet.qos.SloAdmissionQos` -- at sweep scale
#: total backlog is bounded, so the target must sit near the achievable
#: wait, not at the paper-scale tail), and the guaranteed admit floor.
DEFAULT_SLO_TARGET_US = 200.0
DEFAULT_SLO_ADMIT = 0.25


def qos_scale(requests: int = 300, seed: int = 42) -> ExperimentScale:
    """The sweep's default scale: long enough streams for stable p99s.

    300 requests per tenant stream x 4 tenants x 2 devices gives each
    cell a few thousand completions, so merged victim histograms resolve
    a p99 without a 240-cell grid taking hours.
    """
    return ExperimentScale(
        requests=requests,
        requests_per_mix_constituent=max(40, requests // 3),
        seed=seed,
    )


def fair_share_rate(
    preset: str,
    workload: str,
    scale: ExperimentScale,
) -> float:
    """One tenant's fair share of device capacity, in requests/second.

    Materializes the accelerated base trace (each tenant replays it at
    nominal rate) and divides its nominal request rate by
    ``scale.target_pressure``: the replay clock overcommits the device by
    that factor by design, so the nominal rate is *not* sustainable --
    capacity is ``nominal / pressure``, and each tenant's fair share of
    it is what a token bucket should meter.  Plain (non-mix) workloads
    only, matching the isolation sweep.
    """
    config = build_config(preset, scale)
    trace = trace_for(workload, config, scale)
    requests = trace.requests
    if len(requests) < 2:
        raise ConfigurationError(
            f"workload {workload!r} materializes {len(requests)} requests; "
            "cannot estimate an arrival rate"
        )
    span_ns = requests[-1].arrival_ns - requests[0].arrival_ns
    if span_ns <= 0:
        raise ConfigurationError(
            f"workload {workload!r} has a degenerate arrival span"
        )
    nominal = (len(requests) - 1) * NS_PER_S / span_ns
    return nominal / scale.target_pressure


def suggest_token_bucket(
    preset: str = "performance-optimized",
    workload: str = DEFAULT_WORKLOAD,
    scale: Optional[ExperimentScale] = None,
    *,
    headroom: float = 1.0,
    burst: float = DEFAULT_BUCKET_BURST,
) -> str:
    """A canonical fair-share token-bucket policy for this workload/scale.

    ``headroom`` scales the metered rate (1.0 = exact fair share of
    capacity; values above 1 admit some overload, below 1 leave slack).
    The returned string plugs straight into ``make_fleet_spec(qos=...)``.
    """
    scale = scale or qos_scale()
    rate = fair_share_rate(preset, workload, scale) * float(headroom)
    return canonical_qos(f"token-bucket:{rate:g},{burst:g}")


def default_policies(
    preset: str = "performance-optimized",
    workload: str = DEFAULT_WORKLOAD,
    scale: Optional[ExperimentScale] = None,
    *,
    tenants: int = DEFAULT_TENANTS,
    burst_tenant: int = DEFAULT_BURST_TENANT,
) -> Dict[str, str]:
    """The default policy axis: ``{label: canonical policy}``.

    Four entries -- no QoS (the interference baseline), the fair-share
    token bucket from :func:`suggest_token_bucket`, weighted fair
    queueing with the victims weighted 4:1 over the burst tenant, and
    SLO admission at the calibrated sweep-scale target.
    """
    scale = scale or qos_scale()
    weights = ",".join(
        "1" if tenant == burst_tenant else "4" for tenant in range(tenants)
    )
    return {
        "none": "",
        "token-bucket": suggest_token_bucket(preset, workload, scale),
        "wfq": canonical_qos(f"wfq:{weights}"),
        "slo": canonical_qos(
            f"slo:{DEFAULT_SLO_TARGET_US:g},{DEFAULT_SLO_ADMIT:g}"
        ),
    }


def _normalise_policies(
    policies: Union[Mapping[str, str], Sequence[str]],
) -> Dict[str, str]:
    """Canonicalise a policy axis; sequences get derived labels."""
    if isinstance(policies, Mapping):
        items = [(str(label), canonical_qos(spec))
                 for label, spec in policies.items()]
    else:
        items = []
        for spec in policies:
            canonical = canonical_qos(spec)
            label = canonical.split(":", 1)[0] if canonical else "none"
            items.append((label, canonical))
    if not items:
        raise ConfigurationError("sweep needs >= 1 QoS policy")
    out: Dict[str, str] = {}
    for label, canonical in items:
        if label in out and out[label] != canonical:
            raise ConfigurationError(
                f"duplicate policy label {label!r} with different specs"
            )
        out[label] = canonical
    return out


def isolation_specs(
    preset: str,
    workload: str,
    scale: ExperimentScale,
    policies: Mapping[str, str],
    levels: Sequence[float] = DEFAULT_BURST_LEVELS,
    designs: Sequence[DesignKind] = SWEEP_DESIGNS,
    placements: Optional[Sequence[str]] = None,
    *,
    devices: int = DEFAULT_DEVICES,
    tenants: int = DEFAULT_TENANTS,
    burst_tenant: int = DEFAULT_BURST_TENANT,
) -> Dict[Tuple[str, str, str, float], FleetSpec]:
    """The isolation grid: ``{(placement, policy, design, level): fleet}``.

    Level 1 is the fair-share baseline (no burst clause); every cell
    forces ``export_tenant_histograms`` so the baseline's victim p99 is
    measurable even under ``none`` with no burst.  Levels and placements
    deduplicate in input order.
    """
    placements = list(
        dict.fromkeys(placements if placements is not None
                      else placement_names())
    )
    level_axis = list(dict.fromkeys(float(level) for level in levels))
    if not level_axis or not placements:
        raise ConfigurationError("sweep needs >= 1 burst level and placement")
    if any(level < 1 for level in level_axis):
        raise ConfigurationError(
            f"burst levels must be >= 1, got {level_axis}"
        )
    plan: Dict[Tuple[str, str, str, float], FleetSpec] = {}
    for placement in placements:
        for label, policy in policies.items():
            for design in designs:
                for level in level_axis:
                    burst = (
                        f"{burst_tenant}x{level:g}" if level > 1 else ""
                    )
                    fleet = make_fleet_spec(
                        design,
                        preset,
                        workload,
                        scale,
                        devices=devices,
                        placement=placement,
                        tenants=tenants,
                        qos=policy,
                        burst=burst,
                        export_tenant_histograms=True,
                    )
                    key = (
                        fleet.placement,
                        label,
                        fleet.members[0].design,
                        level,
                    )
                    plan[key] = fleet
    return plan


def _isolation_cell(
    fleet: FleetSpec,
    results,
    level: float,
    burst_tenant: int,
) -> Dict[str, object]:
    """Reduce one fleet cell to its isolation-curve point.

    The victim metric merges every non-burst tenant's recorder into one
    distribution before taking percentiles -- three 300-sample streams
    resolve a p99 where each alone would not.
    """
    members = list(fleet.active_members())
    rolled = roll_up(members, results)
    recorders = merge_tenant_payloads([results[spec] for spec in members])
    victim: Optional[LatencyRecorder] = None
    burst_recorder: Optional[LatencyRecorder] = None
    for tenant, recorder in recorders.items():
        if int(tenant) == burst_tenant:
            burst_recorder = recorder
        elif victim is None:
            victim = recorder
        else:
            victim.merge(recorder)
    cell: Dict[str, object] = {
        "level": level,
        "fleet_digest": fleet.digest,
        "requests_completed": rolled["requests_completed"],
        "aggregate_iops": rolled["aggregate_iops"],
        "fleet_p99_ns": rolled["latency"]["p99_ns"],
        "victim_count": victim.count if victim is not None else 0,
        "victim_mean_ns": victim.mean if victim is not None else 0.0,
        "victim_p50_ns": victim.p(0.50) if victim is not None else 0.0,
        "victim_p99_ns": victim.p99 if victim is not None else 0.0,
        "burst_count": (
            burst_recorder.count if burst_recorder is not None else 0
        ),
        "burst_p99_ns": (
            burst_recorder.p99 if burst_recorder is not None else 0.0
        ),
    }
    return cell


def run_qos_sweep(
    preset: str = "performance-optimized",
    workload: str = DEFAULT_WORKLOAD,
    scale: Optional[ExperimentScale] = None,
    levels: Sequence[float] = DEFAULT_BURST_LEVELS,
    policies: Union[None, Mapping[str, str], Sequence[str]] = None,
    designs: Sequence[DesignKind] = SWEEP_DESIGNS,
    placements: Optional[Sequence[str]] = None,
    seed: int = 42,
    *,
    devices: int = DEFAULT_DEVICES,
    tenants: int = DEFAULT_TENANTS,
    burst_tenant: int = DEFAULT_BURST_TENANT,
    executor=None,
    store=None,
) -> Dict[str, object]:
    """Execute the isolation sweep and reduce it to curve payloads.

    Returns ``{"curve": {placement: {policy: {design: [cells]}}}}`` plus
    identification: each cell list is ordered by burst level and carries
    the victim/burst per-tenant percentiles from
    :func:`~repro.fleet.run.merge_tenant_payloads`.  The whole grid --
    every fleet's member specs -- executes as **one** deduplicated
    :func:`~repro.experiments.executor.execute_specs` batch, so cells
    sharing members (the no-burst baselines across policies sharing
    ``none``) simulate once and a warm store serves everything without
    simulating.  Byte-identical across serial/parallel execution and
    across warm-cache re-runs.
    """
    if not 0 <= int(burst_tenant) < int(tenants):
        raise ConfigurationError(
            f"burst tenant {burst_tenant} outside [0, {tenants})"
        )
    scale = scale or qos_scale(seed=seed)
    if policies is None:
        policy_axis = default_policies(
            preset, workload, scale,
            tenants=tenants, burst_tenant=burst_tenant,
        )
    else:
        policy_axis = _normalise_policies(policies)
    plan = isolation_specs(
        preset,
        workload,
        scale,
        policy_axis,
        levels,
        designs,
        placements,
        devices=devices,
        tenants=tenants,
        burst_tenant=burst_tenant,
    )
    all_specs = [
        spec for fleet in plan.values() for spec in fleet.active_members()
    ]
    results = execute_specs(all_specs, executor=executor, store=store)

    curve: Dict[str, Dict[str, Dict[str, List[Dict[str, object]]]]] = {}
    for (placement, label, design, level) in plan:
        fleet = plan[(placement, label, design, level)]
        cell = _isolation_cell(fleet, results, level, burst_tenant)
        (
            curve.setdefault(placement, {})
            .setdefault(label, {})
            .setdefault(design, [])
            .append(cell)
        )
    for per_policy in curve.values():
        for per_design in per_policy.values():
            for cells in per_design.values():
                cells.sort(key=lambda cell: cell["level"])

    placements_out = list(dict.fromkeys(key[0] for key in plan))
    designs_out = list(dict.fromkeys(key[2] for key in plan))
    return {
        "experiment": "qos-sweep",
        "preset": preset,
        "workload": workload,
        "seed": seed,
        "devices": devices,
        "tenants": tenants,
        "burst_tenant": burst_tenant,
        "levels": sorted({key[3] for key in plan}),
        "policies": dict(policy_axis),
        "designs": designs_out,
        "placements": placements_out,
        "curve": curve,
    }
