"""Executor backends: run sets of :class:`RunSpec`\\ s serially or in parallel.

The (design x preset x workload) matrix is embarrassingly parallel -- every
run builds a fresh single-use :class:`~repro.ssd.device.SsdDevice` -- so the
parallel backend simply ships specs to worker processes, each of which
rebuilds the config and trace from the spec and simulates.  Both backends
produce bit-identical :class:`RunResult`\\ s for the same specs because the
simulation is fully seeded by the spec itself.

:func:`execute_specs` is the orchestration entry point figures and the CLI
use: it deduplicates specs, satisfies what it can from an optional
:class:`~repro.experiments.store.ResultStore`, executes only the misses, and
records fresh results back into the store.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.spec import RunSpec
from repro.metrics.collector import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.experiments.store import ResultStore


def execute_spec(spec: RunSpec) -> RunResult:
    """Module-level worker entry point (picklable for multiprocessing)."""
    return spec.execute()


def _worker_context() -> multiprocessing.context.BaseContext:
    """Fork on Linux (cheap, inherits sys.path); spawn everywhere else.

    macOS lists fork as available but forking there is unsafe once system
    frameworks or threads have been touched, which is why CPython defaults
    it to spawn -- honour that.
    """
    return multiprocessing.get_context(
        "fork" if sys.platform == "linux" else "spawn"
    )


class SerialExecutor:
    """Run specs one after another in the calling process."""

    jobs = 1

    def __init__(self) -> None:
        self.runs_completed = 0

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        results = [execute_spec(spec) for spec in specs]
        self.runs_completed += len(specs)
        return results


class ParallelExecutor:
    """Fan specs out over a process pool; results come back in spec order."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1
        self.runs_completed = 0

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        if not specs:
            return []
        workers = min(self.jobs, len(specs))
        if workers <= 1:
            results = [execute_spec(spec) for spec in specs]
        else:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_worker_context()
            ) as pool:
                results = list(pool.map(execute_spec, specs))
        self.runs_completed += len(specs)
        return results


def make_executor(jobs: Optional[int]) -> "SerialExecutor | ParallelExecutor":
    """``--jobs N`` semantics: 1/None stay serial, N>1 goes parallel."""
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {jobs}")
    if jobs and jobs > 1:
        return ParallelExecutor(jobs)
    return SerialExecutor()


def execute_specs(
    specs: Sequence[RunSpec],
    *,
    executor: Optional["SerialExecutor | ParallelExecutor"] = None,
    store: Optional["ResultStore"] = None,
) -> Dict[RunSpec, RunResult]:
    """Execute a spec set with deduplication and store-backed caching.

    Duplicate specs (figures sharing matrix slices) simulate once.  With a
    store, previously-computed results are served from cache and new results
    are persisted, so a repeat invocation performs zero simulations.
    """
    executor = executor or SerialExecutor()
    unique = list(dict.fromkeys(specs))  # order-preserving dedup (hashable specs)
    results: Dict[RunSpec, RunResult] = {}
    missing: List[RunSpec] = []
    for spec in unique:
        cached = store.get(spec) if store is not None else None
        if cached is not None:
            results[spec] = cached
        else:
            missing.append(spec)
    # Trace availability is validated before fan-out: a missing or changed
    # trace file fails the whole batch here, with one clear error, instead
    # of surfacing as a pickled exception from some worker process.  Cached
    # specs are exempt -- their identity already pins the trace content.
    for spec in missing:
        spec.verify_trace()
    for spec, result in zip(missing, executor.run(missing)):
        if store is not None:
            store.put(spec, result)
        results[spec] = result
    return results
