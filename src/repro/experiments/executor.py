"""Executor backends: run sets of :class:`RunSpec`\\ s serially or in parallel.

The (design x preset x workload) matrix is embarrassingly parallel -- every
run builds a fresh single-use :class:`~repro.ssd.device.SsdDevice` -- so the
parallel backend simply ships specs to worker processes, each of which
rebuilds the config and trace from the spec and simulates.  Both backends
produce bit-identical :class:`RunResult`\\ s for the same specs because the
simulation is fully seeded by the spec itself.

:func:`execute_specs` is the orchestration entry point figures and the CLI
use: it deduplicates specs, satisfies what it can from an optional
:class:`~repro.experiments.store.ResultStore`, executes only the misses, and
records fresh results back into the store.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.spec import RunSpec
from repro.metrics.collector import RunResult
from repro.sim.checkpoint import CheckpointStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.experiments.store import ResultStore


def execute_spec(
    spec: RunSpec, checkpoints: Optional[CheckpointStore] = None
) -> RunResult:
    """Module-level worker entry point (picklable for multiprocessing)."""
    return spec.execute(checkpoints)


def _compute_checkpoint(spec: RunSpec) -> Tuple[str, dict]:
    """Worker entry point: one warm-up simulation -> (digest, snapshot)."""
    return spec.checkpoint_digest, spec.compute_checkpoint()[0]


def _execute_packed(packed: Tuple[RunSpec, object]) -> RunResult:
    """Worker entry point for checkpointed parallel runs.

    ``packed`` is ``(spec, ref)`` where ``ref`` rebuilds the checkpoint
    store inside the worker: a directory path string for disk-backed
    stores, a preloaded digest->state dict for memory-only stores, or
    ``None``.  The parent pre-computes every needed checkpoint before
    fan-out, so workers only ever *read* the store.
    """
    spec, ref = packed
    checkpoints: Optional[CheckpointStore] = None
    if isinstance(ref, str):
        checkpoints = CheckpointStore(ref)
    elif isinstance(ref, dict):
        checkpoints = CheckpointStore(preload=ref)
    return spec.execute(checkpoints)


def _worker_context() -> multiprocessing.context.BaseContext:
    """Fork on Linux (cheap, inherits sys.path); spawn everywhere else.

    macOS lists fork as available but forking there is unsafe once system
    frameworks or threads have been touched, which is why CPython defaults
    it to spawn -- honour that.
    """
    return multiprocessing.get_context(
        "fork" if sys.platform == "linux" else "spawn"
    )


class SerialExecutor:
    """Run specs one after another in the calling process."""

    jobs = 1

    def __init__(self) -> None:
        self.runs_completed = 0

    def run(
        self,
        specs: Sequence[RunSpec],
        checkpoints: Optional[CheckpointStore] = None,
    ) -> List[RunResult]:
        results = [execute_spec(spec, checkpoints) for spec in specs]
        self.runs_completed += len(specs)
        return results


class ParallelExecutor:
    """Fan specs out over a process pool; results come back in spec order."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1
        self.runs_completed = 0

    def run(
        self,
        specs: Sequence[RunSpec],
        checkpoints: Optional[CheckpointStore] = None,
    ) -> List[RunResult]:
        if not specs:
            return []
        workers = min(self.jobs, len(specs))
        if workers <= 1:
            results = [execute_spec(spec, checkpoints) for spec in specs]
        else:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_worker_context()
            ) as pool:
                if checkpoints is None:
                    results = list(pool.map(execute_spec, specs))
                else:
                    # Ship a rebuildable reference, not the live store:
                    # the directory for disk-backed stores (workers lazily
                    # read the pre-computed files), the state dict for
                    # memory-only stores.
                    ref: object = (
                        str(checkpoints.directory)
                        if checkpoints.directory is not None
                        else dict(checkpoints._memory)
                    )
                    results = list(
                        pool.map(
                            _execute_packed,
                            [(spec, ref) for spec in specs],
                        )
                    )
        self.runs_completed += len(specs)
        return results


def make_executor(jobs: Optional[int]) -> "SerialExecutor | ParallelExecutor":
    """``--jobs N`` semantics: 1/None stay serial, N>1 goes parallel."""
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {jobs}")
    if jobs and jobs > 1:
        return ParallelExecutor(jobs)
    return SerialExecutor()


def _prepare_checkpoints(
    specs: Sequence[RunSpec],
    checkpoints: CheckpointStore,
    executor: "SerialExecutor | ParallelExecutor",
) -> int:
    """Compute every missing warm-up checkpoint the specs need, in parent.

    Deduplicates by checkpoint digest (a whole matrix slice typically needs
    one checkpoint per design) and fans the warm-up simulations out over a
    process pool when the executor is parallel.  Returns the number of
    warm-up simulations performed; after this pre-pass, worker processes
    only ever read the store.
    """
    pending: Dict[str, RunSpec] = {}
    for spec in specs:
        digest = spec.checkpoint_digest
        if digest not in pending and digest not in checkpoints:
            pending[digest] = spec
    if not pending:
        return 0
    targets = list(pending.values())
    jobs = getattr(executor, "jobs", 1)
    if jobs > 1 and len(targets) > 1:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(targets)), mp_context=_worker_context()
        ) as pool:
            for digest, state in pool.map(_compute_checkpoint, targets):
                checkpoints.put(digest, state)
    else:
        for spec in targets:
            digest, state = _compute_checkpoint(spec)
            checkpoints.put(digest, state)
    return len(targets)


def execute_specs(
    specs: Sequence[RunSpec],
    *,
    executor: Optional["SerialExecutor | ParallelExecutor"] = None,
    store: Optional["ResultStore"] = None,
    checkpoints: Optional[CheckpointStore] = None,
) -> Dict[RunSpec, RunResult]:
    """Execute a spec set with deduplication and store-backed caching.

    Duplicate specs (figures sharing matrix slices) simulate once.  With a
    store, previously-computed results are served from cache and new results
    are persisted, so a repeat invocation performs zero simulations.

    Specs that declare a warm-up phase share device checkpoints through
    ``checkpoints``; when none is supplied one is created automatically --
    disk-backed under ``<store>/checkpoints`` when a result store is in
    play (so warm-ups persist like results do), memory-only otherwise.
    Missing checkpoints are computed in a deduplicated pre-pass before
    the executor fans out, so N matrix cells of one design cost one
    warm-up simulation, not N.
    """
    executor = executor or SerialExecutor()
    unique = list(dict.fromkeys(specs))  # order-preserving dedup (hashable specs)
    results: Dict[RunSpec, RunResult] = {}
    missing: List[RunSpec] = []
    for spec in unique:
        cached = store.get(spec) if store is not None else None
        if cached is not None:
            results[spec] = cached
        else:
            missing.append(spec)
    # Trace availability is validated before fan-out: a missing or changed
    # trace file fails the whole batch here, with one clear error, instead
    # of surfacing as a pickled exception from some worker process.  Cached
    # specs are exempt -- their identity already pins the trace content.
    for spec in missing:
        spec.verify_trace()
    needs_warmup = [spec for spec in missing if spec.warmup]
    if needs_warmup:
        if checkpoints is None:
            checkpoints = CheckpointStore(
                store.directory / "checkpoints" if store is not None else None
            )
        _prepare_checkpoints(needs_warmup, checkpoints, executor)
    if checkpoints is not None:
        run_results = executor.run(missing, checkpoints)
    else:
        # Keep the legacy single-argument call for custom executor
        # implementations that predate checkpoint support.
        run_results = executor.run(missing)
    for spec, result in zip(missing, run_results):
        if store is not None:
            store.put(spec, result)
        results[spec] = result
    return results
