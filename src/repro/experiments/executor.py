"""Executor backends: run sets of :class:`RunSpec`\\ s serially or in parallel.

The (design x preset x workload) matrix is embarrassingly parallel -- every
run builds a fresh single-use :class:`~repro.ssd.device.SsdDevice` -- so the
parallel backend simply ships specs to worker processes, each of which
rebuilds the config and trace from the spec and simulates.  Both backends
produce bit-identical :class:`RunResult`\\ s for the same specs because the
simulation is fully seeded by the spec itself.

:func:`execute_specs` is the orchestration entry point figures and the CLI
use: it deduplicates specs, satisfies what it can from an optional
:class:`~repro.experiments.store.ResultStore`, executes only the misses, and
records fresh results back into the store.

Two robustness layers harden long sweeps:

* a per-spec wall-clock ``timeout`` runs each simulation in its own killable
  subprocess -- a hung cell is killed and reported instead of stalling the
  batch;
* a worker process dying inside the multiprocessing pool (OOM kill, host
  fault) no longer surfaces as an opaque ``BrokenProcessPool`` that loses
  the whole sweep: the unfinished specs are re-run in isolated single-spec
  subprocesses, which completes every healthy cell and names the digest of
  the spec that keeps killing its worker.

Both layers report failures as :class:`~repro.errors.SpecRunError` entries
inside one :class:`~repro.errors.ExecutionError`, raised only after every
other spec has finished (and, under :func:`execute_specs`, been persisted
to the store).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import sys
import time
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError, ExecutionError, SpecRunError
from repro.experiments.spec import RunSpec
from repro.metrics.collector import RunResult
from repro.sim.checkpoint import CheckpointStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.experiments.store import ResultStore


def execute_spec(
    spec: RunSpec, checkpoints: Optional[CheckpointStore] = None
) -> RunResult:
    """Module-level worker entry point (picklable for multiprocessing)."""
    return spec.execute(checkpoints)


def _compute_checkpoint(spec: RunSpec) -> Tuple[str, dict]:
    """Worker entry point: one warm-up simulation -> (digest, snapshot)."""
    return spec.checkpoint_digest, spec.compute_checkpoint()[0]


def checkpoint_ref(checkpoints: Optional[CheckpointStore]) -> object:
    """A picklable reference that rebuilds a checkpoint store in a worker.

    The directory path for disk-backed stores (workers lazily read the
    pre-computed files), the preloaded state dict for memory-only stores,
    ``None`` for no store.
    """
    if checkpoints is None:
        return None
    if checkpoints.directory is not None:
        return str(checkpoints.directory)
    return dict(checkpoints._memory)


def _rebuild_checkpoints(ref: object) -> Optional[CheckpointStore]:
    if isinstance(ref, str):
        return CheckpointStore(ref)
    if isinstance(ref, dict):
        return CheckpointStore(preload=ref)
    return None


def _execute_packed(packed: Tuple[RunSpec, object]) -> RunResult:
    """Worker entry point for checkpointed parallel runs.

    ``packed`` is ``(spec, ref)`` where ``ref`` is a
    :func:`checkpoint_ref`.  The parent pre-computes every needed
    checkpoint before fan-out, so workers only ever *read* the store.
    """
    spec, ref = packed
    return execute_spec(spec, _rebuild_checkpoints(ref))


def _worker_context() -> multiprocessing.context.BaseContext:
    """Fork on Linux (cheap, inherits sys.path); spawn everywhere else.

    macOS lists fork as available but forking there is unsafe once system
    frameworks or threads have been touched, which is why CPython defaults
    it to spawn -- honour that.
    """
    return multiprocessing.get_context(
        "fork" if sys.platform == "linux" else "spawn"
    )


def _subprocess_entry(conn, spec: RunSpec, ref: object) -> None:
    """Single-spec subprocess body: execute and ship the outcome back.

    Sends ``("ok", RunResult)`` or ``("error", traceback_text)`` over the
    pipe; a process that dies before sending anything (SIGKILL, segfault)
    is detected by the parent as a crash.
    """
    try:
        result = execute_spec(spec, _rebuild_checkpoints(ref))
        conn.send(("ok", result))
    except BaseException:  # noqa: BLE001 - ship *any* failure to the parent
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def execute_spec_isolated(
    spec: RunSpec,
    checkpoints: Optional[CheckpointStore] = None,
    timeout: Optional[float] = None,
) -> RunResult:
    """Execute one spec in its own killable subprocess.

    This is the unit the per-spec ``timeout`` machinery and the queue
    workers build on: a simulation that hangs past ``timeout`` seconds is
    SIGKILLed, and a subprocess that dies without reporting is diagnosed
    by exit code.  Raises :class:`~repro.errors.SpecRunError` with reason
    ``timeout`` / ``crash`` / ``exception``.
    """
    results, failures = _run_isolated(
        [spec], checkpoint_ref(checkpoints), jobs=1, timeout=timeout
    )
    if failures:
        raise failures[0]
    return results[0]


def _run_isolated(
    specs: Sequence[RunSpec],
    ref: object,
    jobs: int,
    timeout: Optional[float],
) -> Tuple[List[Optional[RunResult]], List[SpecRunError]]:
    """Run each spec in its own subprocess, at most ``jobs`` at a time.

    Unlike a shared process pool, one subprocess per spec means a crash or
    a kill is attributable to exactly one spec, and a hung spec can be
    killed without disturbing its siblings.  Returns results in spec order
    (``None`` for failed entries) plus the collected failures.
    """
    ctx = _worker_context()
    results: List[Optional[RunResult]] = [None] * len(specs)
    failures: List[SpecRunError] = []
    pending = deque(enumerate(specs))
    live: Dict[int, Tuple[object, object, Optional[float]]] = {}
    try:
        while pending or live:
            while pending and len(live) < jobs:
                index, spec = pending.popleft()
                parent, child = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_subprocess_entry,
                    args=(child, spec, ref),
                    daemon=True,
                )
                proc.start()
                child.close()
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                live[index] = (proc, parent, deadline)
            multiprocessing.connection.wait(
                [conn for _, conn, _ in live.values()], timeout=0.05
            )
            now = time.monotonic()
            for index in list(live):
                proc, conn, deadline = live[index]
                spec = specs[index]
                outcome = None
                if conn.poll():
                    try:
                        outcome = conn.recv()
                    except EOFError:
                        outcome = None  # died between connect and send
                if outcome is not None:
                    status, payload = outcome
                    if status == "ok":
                        results[index] = payload
                    else:
                        failures.append(
                            SpecRunError(
                                spec.digest, spec.label(), "exception", payload
                            )
                        )
                elif not proc.is_alive():
                    failures.append(
                        SpecRunError(
                            spec.digest,
                            spec.label(),
                            "crash",
                            f"worker subprocess died with exit code "
                            f"{proc.exitcode} before reporting a result",
                        )
                    )
                elif deadline is not None and now > deadline:
                    proc.kill()
                    proc.join()
                    failures.append(
                        SpecRunError(
                            spec.digest,
                            spec.label(),
                            "timeout",
                            f"simulation exceeded the {timeout:g}s wall-clock "
                            "limit and was killed",
                        )
                    )
                else:
                    continue  # still running
                proc.join()
                conn.close()
                del live[index]
    finally:
        for proc, conn, _ in live.values():  # pragma: no cover - safety net
            proc.kill()
            proc.join()
            conn.close()
    return results, failures


class SerialExecutor:
    """Run specs one after another in the calling process.

    With a ``timeout``, each spec instead runs in its own killable
    subprocess (see :func:`execute_spec_isolated`) so one hung simulation
    cannot stall the batch.
    """

    jobs = 1

    def __init__(self, timeout: Optional[float] = None) -> None:
        self.timeout = timeout
        self.runs_completed = 0

    def run_detailed(
        self,
        specs: Sequence[RunSpec],
        checkpoints: Optional[CheckpointStore] = None,
    ) -> Tuple[List[Optional[RunResult]], List[SpecRunError]]:
        """Like :meth:`run`, but collect per-spec failures instead of
        raising on the first one."""
        if self.timeout is not None:
            results, failures = _run_isolated(
                specs, checkpoint_ref(checkpoints), 1, self.timeout
            )
        else:
            results = [execute_spec(spec, checkpoints) for spec in specs]
            failures = []
        self.runs_completed += sum(1 for r in results if r is not None)
        return results, failures

    def run(
        self,
        specs: Sequence[RunSpec],
        checkpoints: Optional[CheckpointStore] = None,
    ) -> List[RunResult]:
        results, failures = self.run_detailed(specs, checkpoints)
        if failures:
            raise ExecutionError(failures)
        return results


class ParallelExecutor:
    """Fan specs out over a process pool; results come back in spec order.

    A worker process dying mid-spec (OOM kill, segfault) breaks the shared
    pool; instead of surfacing the opaque ``BrokenProcessPool``, the
    unfinished specs are retried in isolated single-spec subprocesses so
    every healthy spec still completes and the offending spec's digest is
    reported.  A ``timeout`` switches to isolated subprocesses outright
    (a shared pool cannot kill one hung member).
    """

    def __init__(
        self, jobs: Optional[int] = None, timeout: Optional[float] = None
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1
        self.timeout = timeout
        self.runs_completed = 0

    def run_detailed(
        self,
        specs: Sequence[RunSpec],
        checkpoints: Optional[CheckpointStore] = None,
    ) -> Tuple[List[Optional[RunResult]], List[SpecRunError]]:
        """Pool execution with crash containment and optional timeouts."""
        if not specs:
            return [], []
        ref = checkpoint_ref(checkpoints)
        workers = min(self.jobs, len(specs))
        failures: List[SpecRunError] = []
        if self.timeout is not None:
            results, failures = _run_isolated(
                specs, ref, workers, self.timeout
            )
        elif workers <= 1:
            results = [execute_spec(spec, checkpoints) for spec in specs]
        else:
            results = self._run_pool(specs, ref, workers)
            unfinished = [
                index for index, result in enumerate(results)
                if result is None
            ]
            if unfinished:
                # The pool broke.  Finish the stragglers one subprocess per
                # spec: every healthy spec completes, and the spec whose
                # execution kills its host process is precisely identified.
                retried, failures = _run_isolated(
                    [specs[index] for index in unfinished],
                    ref,
                    workers,
                    None,
                )
                for index, result in zip(unfinished, retried):
                    results[index] = result
        self.runs_completed += sum(1 for r in results if r is not None)
        return results, failures

    def _run_pool(
        self, specs: Sequence[RunSpec], ref: object, workers: int
    ) -> List[Optional[RunResult]]:
        """One shared pool pass; ``None`` marks specs lost to pool breakage."""
        results: List[Optional[RunResult]] = [None] * len(specs)
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_worker_context()
        ) as pool:
            futures = [
                pool.submit(_execute_packed, (spec, ref)) for spec in specs
            ]
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    # Every later future is doomed too; stop collecting and
                    # let the isolation pass pick up whatever is missing.
                    break
        return results

    def run(
        self,
        specs: Sequence[RunSpec],
        checkpoints: Optional[CheckpointStore] = None,
    ) -> List[RunResult]:
        results, failures = self.run_detailed(specs, checkpoints)
        if failures:
            raise ExecutionError(failures)
        return results


def make_executor(
    jobs: Optional[int], timeout: Optional[float] = None
) -> "SerialExecutor | ParallelExecutor":
    """``--jobs N`` semantics: 1/None stay serial, N>1 goes parallel.

    ``timeout`` is the per-spec wall-clock limit in seconds (``--timeout``);
    ``None`` means unbounded.
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"--timeout must be > 0, got {timeout}")
    if jobs and jobs > 1:
        return ParallelExecutor(jobs, timeout=timeout)
    return SerialExecutor(timeout=timeout)


def _prepare_checkpoints(
    specs: Sequence[RunSpec],
    checkpoints: CheckpointStore,
    executor: "SerialExecutor | ParallelExecutor",
) -> int:
    """Compute every missing warm-up checkpoint the specs need, in parent.

    Deduplicates by checkpoint digest (a whole matrix slice typically needs
    one checkpoint per design) and fans the warm-up simulations out over a
    process pool when the executor is parallel.  Returns the number of
    warm-up simulations performed; after this pre-pass, worker processes
    only ever read the store.
    """
    pending: Dict[str, RunSpec] = {}
    for spec in specs:
        digest = spec.checkpoint_digest
        if digest not in pending and digest not in checkpoints:
            pending[digest] = spec
    if not pending:
        return 0
    targets = list(pending.values())
    jobs = getattr(executor, "jobs", 1)
    if jobs > 1 and len(targets) > 1:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(targets)), mp_context=_worker_context()
        ) as pool:
            for digest, state in pool.map(_compute_checkpoint, targets):
                checkpoints.put(digest, state)
    else:
        for spec in targets:
            digest, state = _compute_checkpoint(spec)
            checkpoints.put(digest, state)
    return len(targets)


def execute_specs(
    specs: Sequence[RunSpec],
    *,
    executor: Optional["SerialExecutor | ParallelExecutor"] = None,
    store: Optional["ResultStore"] = None,
    checkpoints: Optional[CheckpointStore] = None,
) -> Dict[RunSpec, RunResult]:
    """Execute a spec set with deduplication and store-backed caching.

    Duplicate specs (figures sharing matrix slices) simulate once.  With a
    store, previously-computed results are served from cache and new results
    are persisted, so a repeat invocation performs zero simulations.

    Specs that declare a warm-up phase share device checkpoints through
    ``checkpoints``; when none is supplied one is created automatically --
    disk-backed under ``<store>/checkpoints`` when a result store is in
    play (so warm-ups persist like results do), memory-only otherwise.
    Missing checkpoints are computed in a deduplicated pre-pass before
    the executor fans out, so N matrix cells of one design cost one
    warm-up simulation, not N.

    Per-spec failures (a hung spec killed by the executor's ``timeout``, a
    spec that crashes its worker process) are collected, every *other* spec
    still executes and persists, and one
    :class:`~repro.errors.ExecutionError` naming the failed digests is
    raised at the end -- a single bad cell costs one cell, not the sweep.
    """
    executor = executor or SerialExecutor()
    unique = list(dict.fromkeys(specs))  # order-preserving dedup (hashable specs)
    results: Dict[RunSpec, RunResult] = {}
    missing: List[RunSpec] = []
    for spec in unique:
        cached = store.get(spec) if store is not None else None
        if cached is not None:
            results[spec] = cached
        else:
            missing.append(spec)
    # Trace availability is validated before fan-out: a missing or changed
    # trace file fails the whole batch here, with one clear error, instead
    # of surfacing as a pickled exception from some worker process.  Cached
    # specs are exempt -- their identity already pins the trace content.
    for spec in missing:
        spec.verify_trace()
    needs_warmup = [spec for spec in missing if spec.warmup]
    if needs_warmup:
        if checkpoints is None:
            checkpoints = CheckpointStore(
                store.directory / "checkpoints" if store is not None else None
            )
        _prepare_checkpoints(needs_warmup, checkpoints, executor)
    failures: List[SpecRunError] = []
    if hasattr(executor, "run_detailed"):
        run_results, failures = executor.run_detailed(missing, checkpoints)
    elif checkpoints is not None:
        run_results = executor.run(missing, checkpoints)
    else:
        # Keep the legacy single-argument call for custom executor
        # implementations that predate checkpoint support.
        run_results = executor.run(missing)
    for spec, result in zip(missing, run_results):
        if result is None:
            continue  # failed spec: reported via ExecutionError below
        if store is not None:
            store.put(spec, result)
        results[spec] = result
    if failures:
        raise ExecutionError(failures)
    return results
