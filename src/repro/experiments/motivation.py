"""The Figure 3 motivating example (paper §3.1).

Two read requests to two chips.  On the *same* channel, only the flash read
operations overlap; command and data transfers serialise:

    total = CMD + RD + Transfer + Transfer = 11.01 us

On *different* channels, everything overlaps:

    total = CMD + RD + Transfer = 7.01 us

a 57% average-latency increase from one path conflict.  The module provides
both the analytic computation and a micro-simulation of the same scenario
through the actual BaselineFabric, so the simulator's timing model is
checked against the paper's arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.config.ssd_config import SsdConfig
from repro.config.presets import performance_optimized
from repro.interconnect.shared_bus import BaselineFabric
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine


@dataclass(frozen=True)
class TimelineExample:
    """Analytic service times of the two-request example."""

    cmd_ns: int
    read_ns: int
    transfer_ns: int

    @property
    def same_channel_total_ns(self) -> int:
        """CMD + RD + Transfer + Transfer (the conflicting case)."""
        return self.cmd_ns + self.read_ns + 2 * self.transfer_ns

    @property
    def different_channel_total_ns(self) -> int:
        """CMD + RD + Transfer (fully parallel case)."""
        return self.cmd_ns + self.read_ns + self.transfer_ns

    @property
    def latency_increase_fraction(self) -> float:
        """How much the conflict inflates total service time (~57%)."""
        return (
            self.same_channel_total_ns / self.different_channel_total_ns
        ) - 1.0


def service_timeline_example(
    cmd_ns: int = 10, read_ns: int = 3_000, transfer_ns: int = 4_000
) -> TimelineExample:
    """The paper's numbers: 10 ns CMD, 3 us read, 4 us transfer."""
    return TimelineExample(cmd_ns=cmd_ns, read_ns=read_ns, transfer_ns=transfer_ns)


def simulate_two_reads(
    config: SsdConfig = None, same_channel: bool = True
) -> Tuple[int, int]:
    """Drive the two-read scenario through the real BaselineFabric.

    Returns ``(completion_request_1_ns, completion_request_2_ns)`` where
    each request performs CMD -> flash read -> data transfer, issued at t=0.
    """
    config = config or performance_optimized(blocks_per_plane=4, pages_per_block=4)
    engine = Engine()
    fabric = BaselineFabric(engine, config)
    page = config.geometry.page_size
    read_ns = config.timings.read_ns

    chips = (
        [ChipAddress(0, 0), ChipAddress(0, 1)]
        if same_channel
        else [ChipAddress(0, 0), ChipAddress(1, 0)]
    )
    completions = {}

    def one_read(index: int, chip: ChipAddress):
        yield from fabric.transfer(chip, 0, include_command=True)
        yield engine.timeout(read_ns)
        yield from fabric.transfer(chip, page, include_command=False)
        completions[index] = engine.now

    for index, chip in enumerate(chips):
        engine.process(one_read(index, chip), name=f"read{index}")
    engine.run()
    return completions[0], completions[1]
