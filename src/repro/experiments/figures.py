"""One function per paper figure/table (see DESIGN.md §4 for the index).

Every function returns a plain-dict result carrying the same rows/series the
paper's figure plots, plus the inputs needed to assert the reproduction's
*shape* (orderings, ratios) in tests and benches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.experiments.runner import (
    ALL_DESIGNS,
    ExperimentScale,
    build_config,
    run_design_suite,
    trace_for,
)
from repro.experiments.reporting import geometric_mean
from repro.metrics.collector import RunResult
from repro.power.area import venice_area_report
from repro.power.models import PowerModel
from repro.workloads.catalog import workload_names
from repro.workloads.mixes import mix_names

# A representative cross-section of Table 2 used when a caller does not ask
# for all nineteen traces (benchmark scale): covers read-heavy, write-heavy,
# large-request, zipfian, and low-intensity behaviour.
DEFAULT_WORKLOADS = ("hm_0", "proj_3", "prxy_0", "src2_1", "YCSB_B", "ssd-10")

FigureMatrix = Dict[str, Dict[str, RunResult]]


def _run_matrix(
    preset: str,
    workloads: Sequence[str],
    scale: ExperimentScale,
    designs: Sequence[DesignKind] = ALL_DESIGNS,
    *,
    mix: bool = False,
    with_cdf: bool = False,
    config: Optional[SsdConfig] = None,
) -> Tuple[SsdConfig, FigureMatrix]:
    config = config or build_config(preset, scale)
    matrix: FigureMatrix = {}
    for workload in workloads:
        trace = trace_for(workload, config, scale, mix=mix)
        matrix[workload] = run_design_suite(
            config, trace, scale, designs, with_cdf=with_cdf
        )
    return config, matrix


def _speedups(matrix: FigureMatrix) -> Dict[str, Dict[str, float]]:
    """Per-workload speedup of each design over the baseline run."""
    out: Dict[str, Dict[str, float]] = {}
    for workload, results in matrix.items():
        baseline = results[DesignKind.BASELINE.value]
        out[workload] = {
            design: result.speedup_over(baseline)
            for design, result in results.items()
            if design != DesignKind.BASELINE.value
        }
    return out


def _gmeans(per_workload: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    designs = {design for values in per_workload.values() for design in values}
    return {
        design: geometric_mean(
            [values[design] for values in per_workload.values() if design in values]
        )
        for design in sorted(designs)
    }


# --------------------------------------------------------------------- #
# Figure 4: motivation -- prior approaches vs the ideal SSD (perf-opt)
# --------------------------------------------------------------------- #

def fig4_motivation(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Dict[str, object]:
    designs = (
        DesignKind.BASELINE,
        DesignKind.PSSD,
        DesignKind.PNSSD,
        DesignKind.NOSSD,
        DesignKind.IDEAL,
    )
    _, matrix = _run_matrix("performance-optimized", workloads, scale, designs)
    speedups = _speedups(matrix)
    return {
        "figure": "fig4",
        "speedups": speedups,
        "gmean": _gmeans(speedups),
        "workloads": list(workloads),
    }


# --------------------------------------------------------------------- #
# Figure 9: Venice speedup on both configurations
# --------------------------------------------------------------------- #

def fig9_speedup(
    preset: str = "performance-optimized",
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Dict[str, object]:
    _, matrix = _run_matrix(preset, workloads, scale)
    speedups = _speedups(matrix)
    return {
        "figure": "fig9a" if preset.startswith("perf") else "fig9b",
        "preset": preset,
        "speedups": speedups,
        "gmean": _gmeans(speedups),
        "workloads": list(workloads),
    }


# --------------------------------------------------------------------- #
# Figure 10: throughput normalized to the path-conflict-free SSD
# --------------------------------------------------------------------- #

def fig10_throughput(
    preset: str = "performance-optimized",
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Dict[str, object]:
    _, matrix = _run_matrix(preset, workloads, scale)
    normalized: Dict[str, Dict[str, float]] = {}
    for workload, results in matrix.items():
        ideal = results[DesignKind.IDEAL.value]
        normalized[workload] = {
            design: result.throughput_normalized_to(ideal)
            for design, result in results.items()
            if design != DesignKind.IDEAL.value
        }
    designs = {design for values in normalized.values() for design in values}
    average = {
        design: sum(values[design] for values in normalized.values() if design in values)
        / sum(1 for values in normalized.values() if design in values)
        for design in sorted(designs)
    }
    return {
        "figure": "fig10",
        "preset": preset,
        "normalized_throughput": normalized,
        "average": average,
        "workloads": list(workloads),
    }


# --------------------------------------------------------------------- #
# Figure 11: tail latency CDFs for src1_0 and hm_0 (perf-opt)
# --------------------------------------------------------------------- #

def fig11_tail_latency(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = ("src1_0", "hm_0"),
) -> Dict[str, object]:
    _, matrix = _run_matrix(
        "performance-optimized", workloads, scale, with_cdf=True
    )
    tails: Dict[str, Dict[str, float]] = {}
    cdfs: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for workload, results in matrix.items():
        tails[workload] = {
            design: result.p99_latency_ns for design, result in results.items()
        }
        cdfs[workload] = {
            design: result.tail_cdf for design, result in results.items()
        }
    reductions: Dict[str, Dict[str, float]] = {}
    for workload, values in tails.items():
        baseline_tail = values[DesignKind.BASELINE.value]
        reductions[workload] = {
            design: 1.0 - tail / baseline_tail
            for design, tail in values.items()
            if design != DesignKind.BASELINE.value
        }
    return {
        "figure": "fig11",
        "p99_ns": tails,
        "tail_cdfs": cdfs,
        "reduction_vs_baseline": reductions,
        "workloads": list(workloads),
    }


# --------------------------------------------------------------------- #
# Figure 12: mixed workloads (perf-opt)
# --------------------------------------------------------------------- #

def fig12_mixed(
    scale: ExperimentScale = ExperimentScale(),
    mixes: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    mixes = list(mixes) if mixes is not None else mix_names()
    _, matrix = _run_matrix("performance-optimized", mixes, scale, mix=True)
    speedups = _speedups(matrix)
    return {
        "figure": "fig12",
        "speedups": speedups,
        "gmean": _gmeans(speedups),
        "mixes": mixes,
    }


# --------------------------------------------------------------------- #
# Figure 13: % of I/O requests experiencing path conflicts (perf-opt)
# --------------------------------------------------------------------- #

def fig13_conflicts(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Dict[str, object]:
    designs = (
        DesignKind.BASELINE,
        DesignKind.PSSD,
        DesignKind.PNSSD,
        DesignKind.NOSSD,
        DesignKind.VENICE,
    )
    _, matrix = _run_matrix("performance-optimized", workloads, scale, designs)
    conflicts: Dict[str, Dict[str, float]] = {
        workload: {
            design: result.conflict_fraction for design, result in results.items()
        }
        for workload, results in matrix.items()
    }
    average = {}
    for design in [kind.value for kind in designs]:
        series = [values[design] for values in conflicts.values() if design in values]
        average[design] = sum(series) / len(series) if series else 0.0
    return {
        "figure": "fig13",
        "conflict_fraction": conflicts,
        "average": average,
        "workloads": list(workloads),
    }


# --------------------------------------------------------------------- #
# Figure 14: power and energy normalized to Baseline SSD (perf-opt)
# --------------------------------------------------------------------- #

def fig14_power_energy(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> Dict[str, object]:
    designs = (
        DesignKind.BASELINE,
        DesignKind.PSSD,
        DesignKind.PNSSD,
        DesignKind.NOSSD,
        DesignKind.VENICE,
    )
    _, matrix = _run_matrix("performance-optimized", workloads, scale, designs)
    power: Dict[str, Dict[str, float]] = {}
    energy: Dict[str, Dict[str, float]] = {}
    for workload, results in matrix.items():
        baseline = results[DesignKind.BASELINE.value]
        power[workload] = {
            design: result.average_power_mw / baseline.average_power_mw
            for design, result in results.items()
            if design != DesignKind.BASELINE.value
        }
        energy[workload] = {
            design: result.energy_mj / baseline.energy_mj
            for design, result in results.items()
            if design != DesignKind.BASELINE.value
        }
    def _avg(table: Dict[str, Dict[str, float]]) -> Dict[str, float]:
        designs_present = {d for values in table.values() for d in values}
        return {
            design: sum(values[design] for values in table.values() if design in values)
            / sum(1 for values in table.values() if design in values)
            for design in sorted(designs_present)
        }
    return {
        "figure": "fig14",
        "normalized_power": power,
        "normalized_energy": energy,
        "average_power": _avg(power),
        "average_energy": _avg(energy),
        "workloads": list(workloads),
    }


# --------------------------------------------------------------------- #
# Figure 15: sensitivity to the flash-controller count (4x16 / 8x8 / 16x4)
# --------------------------------------------------------------------- #

def fig15_sensitivity(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    geometries: Sequence[Tuple[int, int]] = ((4, 16), (8, 8), (16, 4)),
) -> Dict[str, object]:
    designs = (
        DesignKind.BASELINE,
        DesignKind.PSSD,
        DesignKind.NOSSD,  # pnSSD omitted: requires a square array (§6.5)
        DesignKind.VENICE,
        DesignKind.IDEAL,
    )
    per_geometry: Dict[str, Dict[str, float]] = {}
    for channels, chips in geometries:
        base = build_config("performance-optimized", scale)
        config = base.with_geometry(channels, chips)
        _, matrix = _run_matrix(
            "performance-optimized", workloads, scale, designs, config=config
        )
        speedups = _speedups(matrix)
        per_geometry[f"{channels}x{chips}"] = _gmeans(speedups)
    return {
        "figure": "fig15",
        "gmean_speedups": per_geometry,
        "workloads": list(workloads),
        "geometries": [f"{c}x{w}" for c, w in geometries],
    }


# --------------------------------------------------------------------- #
# Table 4: power and area overheads (analytic)
# --------------------------------------------------------------------- #

def table4_overheads(
    scale: ExperimentScale = ExperimentScale(),
    power_model: PowerModel = PowerModel(),
) -> Dict[str, object]:
    config = build_config("performance-optimized", scale)
    area = venice_area_report(config)
    return {
        "table": "table4",
        "router_power_mw": power_model.router_active_mw,
        "link_power_mw_4kb_transfer": power_model.link_active_mw,
        "channel_power_mw": power_model.channel_active_mw,
        "link_vs_channel_power_saving": 1.0
        - power_model.link_active_mw / power_model.channel_active_mw,
        **area,
    }
