"""One declaration per paper figure/table (see DESIGN.md §4 for the index).

Every figure is a :class:`FigureDef`: a *spec set* (the runs it needs, as
:class:`~repro.experiments.spec.RunSpec` values) plus a *pure reducer* that
turns the executed results into the plain-dict rows/series the paper's
figure plots.  Declaring figures this way buys two things:

* the spec sets of different figures overlap (fig9a/10/13/14 all draw from
  the same performance-optimized six-design matrix), and the executor/store
  layer deduplicates them, so ``run_all_figures`` simulates each distinct
  run exactly once, in parallel if asked;
* reducers never simulate, so cached results can be re-reduced for free.

The per-figure functions (``fig9_speedup`` etc.) keep their historical
signatures and remain the unit-test surface; they are thin wrappers over
the declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError
from repro.experiments.executor import execute_specs
from repro.experiments.reporting import geometric_mean
from repro.experiments.spec import (
    ALL_DESIGNS,
    TRACE_WORKLOAD_PREFIX,
    ExperimentScale,
    RunSpec,
    build_config,
    matrix_specs,
)
from repro.metrics.collector import RunResult
from repro.power.area import venice_area_report
from repro.sim.checkpoint import WarmupPhase
from repro.sim.convergence import EarlyStopPolicy
from repro.sim.faults import FaultSchedule
from repro.power.models import PowerModel
from repro.workloads.catalog import workload_names
from repro.workloads.formats import trace_stem
from repro.workloads.mixes import mix_names

# A representative cross-section of Table 2 used when a caller does not ask
# for all nineteen traces (benchmark scale): covers read-heavy, write-heavy,
# large-request, zipfian, and low-intensity behaviour.
DEFAULT_WORKLOADS = ("hm_0", "proj_3", "prxy_0", "src2_1", "YCSB_B", "ssd-10")

# Figure 11 plots tail-latency CDFs for these two traces specifically.
FIG11_WORKLOADS = ("src1_0", "hm_0")

FIG15_GEOMETRIES = ((4, 16), (8, 8), (16, 4))

FigureMatrix = Dict[str, Dict[str, RunResult]]
SpecResults = Mapping[RunSpec, RunResult]
Reducer = Callable[[SpecResults], Dict[str, object]]
Plan = Tuple[Tuple[RunSpec, ...], Reducer]

_MOTIVATION_DESIGNS = (
    DesignKind.BASELINE,
    DesignKind.PSSD,
    DesignKind.PNSSD,
    DesignKind.NOSSD,
    DesignKind.IDEAL,
)
_CONFLICT_DESIGNS = (
    DesignKind.BASELINE,
    DesignKind.PSSD,
    DesignKind.PNSSD,
    DesignKind.NOSSD,
    DesignKind.VENICE,
)
_SENSITIVITY_DESIGNS = (
    DesignKind.BASELINE,
    DesignKind.PSSD,
    DesignKind.NOSSD,  # pnSSD omitted: requires a square array (§6.5)
    DesignKind.VENICE,
    DesignKind.IDEAL,
)


def _matrix_of(specs: Sequence[RunSpec], results: SpecResults) -> FigureMatrix:
    """Regroup executed spec results into {workload: {design: result}}."""
    matrix: FigureMatrix = {}
    for spec in specs:
        matrix.setdefault(spec.workload, {})[spec.design] = results[spec]
    return matrix


def _speedups(matrix: FigureMatrix) -> Dict[str, Dict[str, float]]:
    """Per-workload speedup of each design over the baseline run."""
    out: Dict[str, Dict[str, float]] = {}
    for workload, results in matrix.items():
        baseline = results[DesignKind.BASELINE.value]
        out[workload] = {
            design: result.speedup_over(baseline)
            for design, result in results.items()
            if design != DesignKind.BASELINE.value
        }
    return out


def _gmeans(per_workload: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    designs = {design for values in per_workload.values() for design in values}
    return {
        design: geometric_mean(
            [values[design] for values in per_workload.values() if design in values]
        )
        for design in sorted(designs)
    }


def _averages(table: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    designs = {design for values in table.values() for design in values}
    return {
        design: sum(values[design] for values in table.values() if design in values)
        / sum(1 for values in table.values() if design in values)
        for design in sorted(designs)
    }


# --------------------------------------------------------------------- #
# Figure 4: motivation -- prior approaches vs the ideal SSD (perf-opt)
# --------------------------------------------------------------------- #

def _plan_fig4(
    scale: ExperimentScale, workloads: Optional[Sequence[str]]
) -> Plan:
    workloads = tuple(workloads or DEFAULT_WORKLOADS)
    specs = matrix_specs(
        "performance-optimized", workloads, scale, _MOTIVATION_DESIGNS
    )

    def reduce(results: SpecResults) -> Dict[str, object]:
        speedups = _speedups(_matrix_of(specs, results))
        return {
            "figure": "fig4",
            "speedups": speedups,
            "gmean": _gmeans(speedups),
            "workloads": list(workloads),
        }

    return specs, reduce


def fig4_motivation(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    *,
    executor=None,
    store=None,
) -> Dict[str, object]:
    specs, reduce = _plan_fig4(scale, workloads)
    return reduce(execute_specs(specs, executor=executor, store=store))


# --------------------------------------------------------------------- #
# Figure 9: Venice speedup on both configurations
# --------------------------------------------------------------------- #

def _plan_fig9(
    preset: str, scale: ExperimentScale, workloads: Optional[Sequence[str]]
) -> Plan:
    workloads = tuple(workloads or DEFAULT_WORKLOADS)
    specs = matrix_specs(preset, workloads, scale, ALL_DESIGNS)

    def reduce(results: SpecResults) -> Dict[str, object]:
        speedups = _speedups(_matrix_of(specs, results))
        return {
            "figure": "fig9a" if preset.startswith("perf") else "fig9b",
            "preset": preset,
            "speedups": speedups,
            "gmean": _gmeans(speedups),
            "workloads": list(workloads),
        }

    return specs, reduce


def fig9_speedup(
    preset: str = "performance-optimized",
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    *,
    executor=None,
    store=None,
) -> Dict[str, object]:
    specs, reduce = _plan_fig9(preset, scale, workloads)
    return reduce(execute_specs(specs, executor=executor, store=store))


# --------------------------------------------------------------------- #
# Figure 10: throughput normalized to the path-conflict-free SSD
# --------------------------------------------------------------------- #

def _plan_fig10(
    preset: str, scale: ExperimentScale, workloads: Optional[Sequence[str]]
) -> Plan:
    workloads = tuple(workloads or DEFAULT_WORKLOADS)
    specs = matrix_specs(preset, workloads, scale, ALL_DESIGNS)

    def reduce(results: SpecResults) -> Dict[str, object]:
        matrix = _matrix_of(specs, results)
        normalized: Dict[str, Dict[str, float]] = {}
        for workload, by_design in matrix.items():
            ideal = by_design[DesignKind.IDEAL.value]
            normalized[workload] = {
                design: result.throughput_normalized_to(ideal)
                for design, result in by_design.items()
                if design != DesignKind.IDEAL.value
            }
        return {
            "figure": "fig10",
            "preset": preset,
            "normalized_throughput": normalized,
            "average": _averages(normalized),
            "workloads": list(workloads),
        }

    return specs, reduce


def fig10_throughput(
    preset: str = "performance-optimized",
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    *,
    executor=None,
    store=None,
) -> Dict[str, object]:
    specs, reduce = _plan_fig10(preset, scale, workloads)
    return reduce(execute_specs(specs, executor=executor, store=store))


# --------------------------------------------------------------------- #
# Figure 11: tail latency CDFs for src1_0 and hm_0 (perf-opt)
# --------------------------------------------------------------------- #

def _plan_fig11(
    scale: ExperimentScale, workloads: Optional[Sequence[str]]
) -> Plan:
    workloads = tuple(workloads or FIG11_WORKLOADS)
    specs = matrix_specs(
        "performance-optimized", workloads, scale, ALL_DESIGNS, with_cdf=True
    )

    def reduce(results: SpecResults) -> Dict[str, object]:
        matrix = _matrix_of(specs, results)
        tails: Dict[str, Dict[str, float]] = {}
        cdfs: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
        for workload, by_design in matrix.items():
            tails[workload] = {
                design: result.p99_latency_ns
                for design, result in by_design.items()
            }
            cdfs[workload] = {
                design: result.tail_cdf for design, result in by_design.items()
            }
        reductions: Dict[str, Dict[str, float]] = {}
        for workload, values in tails.items():
            baseline_tail = values[DesignKind.BASELINE.value]
            reductions[workload] = {
                design: 1.0 - tail / baseline_tail
                for design, tail in values.items()
                if design != DesignKind.BASELINE.value
            }
        return {
            "figure": "fig11",
            "p99_ns": tails,
            "tail_cdfs": cdfs,
            "reduction_vs_baseline": reductions,
            "workloads": list(workloads),
        }

    return specs, reduce


def fig11_tail_latency(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = FIG11_WORKLOADS,
    *,
    executor=None,
    store=None,
) -> Dict[str, object]:
    specs, reduce = _plan_fig11(scale, workloads)
    return reduce(execute_specs(specs, executor=executor, store=store))


# --------------------------------------------------------------------- #
# Figure 12: mixed workloads (perf-opt)
# --------------------------------------------------------------------- #

def _plan_fig12(
    scale: ExperimentScale, mixes: Optional[Sequence[str]]
) -> Plan:
    mixes = tuple(mixes) if mixes is not None else tuple(mix_names())
    # `trace:<path>` entries replay a recorded multi-tenant stream directly
    # (mix=False: the file already interleaves its tenants), Table 3 names
    # synthesise the published mix.
    trace_entries = tuple(
        name for name in mixes if name.startswith(TRACE_WORKLOAD_PREFIX)
    )
    mix_entries = tuple(
        name for name in mixes if not name.startswith(TRACE_WORKLOAD_PREFIX)
    )
    specs = matrix_specs(
        "performance-optimized", mix_entries, scale, ALL_DESIGNS, mix=True
    ) + matrix_specs(
        "performance-optimized", trace_entries, scale, ALL_DESIGNS
    )

    def reduce(results: SpecResults) -> Dict[str, object]:
        speedups = _speedups(_matrix_of(specs, results))
        return {
            "figure": "fig12",
            "speedups": speedups,
            "gmean": _gmeans(speedups),
            "mixes": list(mixes),
        }

    return specs, reduce


def fig12_mixed(
    scale: ExperimentScale = ExperimentScale(),
    mixes: Optional[Sequence[str]] = None,
    *,
    executor=None,
    store=None,
) -> Dict[str, object]:
    specs, reduce = _plan_fig12(scale, mixes)
    return reduce(execute_specs(specs, executor=executor, store=store))


# --------------------------------------------------------------------- #
# Figure 13: % of I/O requests experiencing path conflicts (perf-opt)
# --------------------------------------------------------------------- #

def _plan_fig13(
    scale: ExperimentScale, workloads: Optional[Sequence[str]]
) -> Plan:
    workloads = tuple(workloads or DEFAULT_WORKLOADS)
    specs = matrix_specs(
        "performance-optimized", workloads, scale, _CONFLICT_DESIGNS
    )

    def reduce(results: SpecResults) -> Dict[str, object]:
        matrix = _matrix_of(specs, results)
        conflicts: Dict[str, Dict[str, float]] = {
            workload: {
                design: result.conflict_fraction
                for design, result in by_design.items()
            }
            for workload, by_design in matrix.items()
        }
        average = {}
        for design in [kind.value for kind in _CONFLICT_DESIGNS]:
            series = [
                values[design] for values in conflicts.values() if design in values
            ]
            average[design] = sum(series) / len(series) if series else 0.0
        return {
            "figure": "fig13",
            "conflict_fraction": conflicts,
            "average": average,
            "workloads": list(workloads),
        }

    return specs, reduce


def fig13_conflicts(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    *,
    executor=None,
    store=None,
) -> Dict[str, object]:
    specs, reduce = _plan_fig13(scale, workloads)
    return reduce(execute_specs(specs, executor=executor, store=store))


# --------------------------------------------------------------------- #
# Figure 14: power and energy normalized to Baseline SSD (perf-opt)
# --------------------------------------------------------------------- #

def _plan_fig14(
    scale: ExperimentScale, workloads: Optional[Sequence[str]]
) -> Plan:
    workloads = tuple(workloads or DEFAULT_WORKLOADS)
    specs = matrix_specs(
        "performance-optimized", workloads, scale, _CONFLICT_DESIGNS
    )

    def reduce(results: SpecResults) -> Dict[str, object]:
        matrix = _matrix_of(specs, results)
        power: Dict[str, Dict[str, float]] = {}
        energy: Dict[str, Dict[str, float]] = {}
        for workload, by_design in matrix.items():
            baseline = by_design[DesignKind.BASELINE.value]
            power[workload] = {
                design: result.average_power_mw / baseline.average_power_mw
                for design, result in by_design.items()
                if design != DesignKind.BASELINE.value
            }
            energy[workload] = {
                design: result.energy_mj / baseline.energy_mj
                for design, result in by_design.items()
                if design != DesignKind.BASELINE.value
            }
        return {
            "figure": "fig14",
            "normalized_power": power,
            "normalized_energy": energy,
            "average_power": _averages(power),
            "average_energy": _averages(energy),
            "workloads": list(workloads),
        }

    return specs, reduce


def fig14_power_energy(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    *,
    executor=None,
    store=None,
) -> Dict[str, object]:
    specs, reduce = _plan_fig14(scale, workloads)
    return reduce(execute_specs(specs, executor=executor, store=store))


# --------------------------------------------------------------------- #
# Figure 15: sensitivity to the flash-controller count (4x16 / 8x8 / 16x4)
# --------------------------------------------------------------------- #

def _plan_fig15(
    scale: ExperimentScale,
    workloads: Optional[Sequence[str]],
    geometries: Sequence[Tuple[int, int]] = FIG15_GEOMETRIES,
) -> Plan:
    workloads = tuple(workloads or DEFAULT_WORKLOADS)
    geometries = tuple(tuple(geometry) for geometry in geometries)
    per_geometry_specs = {
        geometry: matrix_specs(
            "performance-optimized",
            workloads,
            scale,
            _SENSITIVITY_DESIGNS,
            geometry=geometry,
        )
        for geometry in geometries
    }
    specs = tuple(
        spec for geometry in geometries for spec in per_geometry_specs[geometry]
    )

    def reduce(results: SpecResults) -> Dict[str, object]:
        per_geometry: Dict[str, Dict[str, float]] = {}
        for (channels, chips), geometry_specs in per_geometry_specs.items():
            speedups = _speedups(_matrix_of(geometry_specs, results))
            per_geometry[f"{channels}x{chips}"] = _gmeans(speedups)
        return {
            "figure": "fig15",
            "gmean_speedups": per_geometry,
            "workloads": list(workloads),
            "geometries": [f"{c}x{w}" for c, w in geometries],
        }

    return specs, reduce


def fig15_sensitivity(
    scale: ExperimentScale = ExperimentScale(),
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    geometries: Sequence[Tuple[int, int]] = FIG15_GEOMETRIES,
    *,
    executor=None,
    store=None,
) -> Dict[str, object]:
    specs, reduce = _plan_fig15(scale, workloads, geometries)
    return reduce(execute_specs(specs, executor=executor, store=store))


# --------------------------------------------------------------------- #
# Table 4: power and area overheads (analytic)
# --------------------------------------------------------------------- #

def _plan_table4(
    scale: ExperimentScale, power_model: Optional[PowerModel] = None
) -> Plan:
    power_model = power_model or PowerModel()

    def reduce(results: SpecResults) -> Dict[str, object]:
        config = build_config("performance-optimized", scale)
        area = venice_area_report(config)
        return {
            "table": "table4",
            "router_power_mw": power_model.router_active_mw,
            "link_power_mw_4kb_transfer": power_model.link_active_mw,
            "channel_power_mw": power_model.channel_active_mw,
            "link_vs_channel_power_saving": 1.0
            - power_model.link_active_mw / power_model.channel_active_mw,
            **area,
        }

    return (), reduce


def table4_overheads(
    scale: ExperimentScale = ExperimentScale(),
    power_model: PowerModel = PowerModel(),
) -> Dict[str, object]:
    _, reduce = _plan_table4(scale, power_model)
    return reduce({})


# --------------------------------------------------------------------- #
# The figure registry: what the CLI and the matrix pass dispatch on
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class FigureDef:
    """A paper figure, declared: which runs it needs and how to reduce them.

    ``workload_kind`` states what the ``--workloads`` flag means for this
    figure: ``"traces"`` (Table 2 trace names), ``"mixes"`` (Table 3 mix
    names), or ``"none"`` (analytic, no workloads at all).  Each plan
    function supplies its own default set when given ``None``.
    """

    name: str
    workload_kind: str
    plan: Callable[[ExperimentScale, Optional[Sequence[str]]], Plan]


FIGURES: Dict[str, FigureDef] = {
    "fig4": FigureDef("fig4", "traces", _plan_fig4),
    "fig9a": FigureDef(
        "fig9a",
        "traces",
        lambda scale, workloads: _plan_fig9(
            "performance-optimized", scale, workloads
        ),
    ),
    "fig9b": FigureDef(
        "fig9b",
        "traces",
        lambda scale, workloads: _plan_fig9("cost-optimized", scale, workloads),
    ),
    "fig10": FigureDef(
        "fig10",
        "traces",
        lambda scale, workloads: _plan_fig10(
            "performance-optimized", scale, workloads
        ),
    ),
    "fig11": FigureDef("fig11", "traces", _plan_fig11),
    "fig12": FigureDef("fig12", "mixes", _plan_fig12),
    "fig13": FigureDef("fig13", "traces", _plan_fig13),
    "fig14": FigureDef("fig14", "traces", _plan_fig14),
    "fig15": FigureDef("fig15", "traces", _plan_fig15),
    "table4": FigureDef(
        "table4", "none", lambda scale, workloads: _plan_table4(scale)
    ),
}

FIGURE_NAMES: Tuple[str, ...] = tuple(FIGURES)


def validate_figure_workloads(
    name: str, workloads: Optional[Sequence[str]]
) -> Optional[List[str]]:
    """Check a ``--workloads`` request against what the figure accepts.

    Raises :class:`ConfigurationError` with an actionable message when the
    flag does not apply (table4) or names are of the wrong kind (fig12 takes
    mix names, the trace figures take Table 2 trace names).
    """
    definition = FIGURES[name]
    if workloads is None:
        return None
    if definition.workload_kind == "none":
        raise ConfigurationError(
            f"{name} is analytic and does not take --workloads"
        )
    if len(workloads) == 0:
        raise ConfigurationError(
            f"--workloads for {name} needs at least one name "
            "(omit the flag to use the default set)"
        )
    if definition.workload_kind == "mixes":
        valid, kind = set(mix_names()), "mix"
    else:
        valid, kind = set(workload_names()), "workload"
    unknown = [
        workload
        for workload in workloads
        # `trace:<path>` names replay real files; the spec layer validates
        # the file itself (existence, format, digest) eagerly.
        if workload not in valid and not workload.startswith(TRACE_WORKLOAD_PREFIX)
    ]
    if unknown:
        raise ConfigurationError(
            f"{name} takes {kind} names; unknown: {', '.join(unknown)} "
            f"(valid: {', '.join(sorted(valid))})"
        )
    # Trace files become workload rows named by their stem; two *different*
    # files sharing a stem would silently overwrite each other in the
    # figure's {workload: {design: result}} matrix.
    stems: Dict[str, Path] = {}
    for workload in workloads:
        if not workload.startswith(TRACE_WORKLOAD_PREFIX):
            continue
        path = Path(workload[len(TRACE_WORKLOAD_PREFIX):]).expanduser()
        stem = trace_stem(path)
        resolved = path.resolve()
        previous = stems.setdefault(stem, resolved)
        if previous != resolved:
            raise ConfigurationError(
                f"trace files {previous} and {resolved} both reduce to "
                f"workload name {stem!r}; rename one so {name}'s rows stay "
                "distinct"
            )
    return list(workloads)


def _figure_overrides(
    faults: Optional[str],
    warmup: Optional[str],
    early_stop: Optional[str],
) -> Dict[str, str]:
    """Canonicalised spec-field overrides a figure run applies to each cell.

    Each override twins every cell of the figure with the field set, so the
    modified figure (degraded fabric, warmed-up devices, early-stopped
    measured phases) lives under distinct digests beside the exact one.
    """
    overrides: Dict[str, str] = {}
    if faults:
        overrides["faults"] = FaultSchedule.parse(faults).to_spec()
    if warmup:
        overrides["warmup"] = WarmupPhase.parse(warmup).to_spec()
    if early_stop:
        overrides["early_stop"] = EarlyStopPolicy.parse(early_stop).to_spec()
    return overrides


def run_figure(
    name: str,
    scale: ExperimentScale = ExperimentScale(),
    workloads: Optional[Sequence[str]] = None,
    *,
    executor=None,
    store=None,
    faults: Optional[str] = None,
    warmup: Optional[str] = None,
    early_stop: Optional[str] = None,
) -> Dict[str, object]:
    """Execute one figure's spec set (cache-aware) and reduce it.

    ``faults`` applies one fault schedule (grammar string, see
    docs/faults.md) to every run of the figure, regenerating the figure on
    a degraded fabric; the faulted specs are distinct cache entries, so
    pristine and degraded figures coexist in one store.  ``warmup`` and
    ``early_stop`` (docs/performance.md) likewise twin every cell with a
    checkpointed warm-up phase and a steady-state early-stop policy --
    cells of one design share a single warm-up through the checkpoint
    store that ``execute_specs`` wires up automatically.
    """
    if name not in FIGURES:
        raise ConfigurationError(
            f"unknown figure {name!r}; expected one of {', '.join(FIGURES)}"
        )
    specs, reduce = FIGURES[name].plan(scale, workloads)
    overrides = _figure_overrides(faults, warmup, early_stop)
    if overrides:
        # Reducers close over the plan's original spec objects, so execute
        # the overridden twins and key the results back by the originals.
        twins = {
            spec: replace(spec, **overrides) for spec in dict.fromkeys(specs)
        }
        results = execute_specs(
            list(twins.values()), executor=executor, store=store
        )
        return reduce(
            {original: results[twin] for original, twin in twins.items()}
        )
    return reduce(execute_specs(specs, executor=executor, store=store))


def run_all_figures(
    scale: ExperimentScale = ExperimentScale(),
    *,
    workloads: Optional[Sequence[str]] = None,
    mixes: Optional[Sequence[str]] = None,
    figures: Optional[Sequence[str]] = None,
    executor=None,
    store=None,
    faults: Optional[str] = None,
    warmup: Optional[str] = None,
    early_stop: Optional[str] = None,
) -> Dict[str, Dict[str, object]]:
    """Regenerate every figure from one deduplicated, shared spec pass.

    All figures' spec sets are unioned and executed together -- through the
    parallel executor when one is supplied -- then each figure is reduced
    from the shared results.  ``workloads`` overrides the Table 2 trace set
    of the trace figures; ``mixes`` overrides fig12's mix list.  The
    ``faults`` / ``warmup`` / ``early_stop`` overrides apply to every cell
    of every selected figure, exactly as in :func:`run_figure`.
    """
    names = tuple(figures) if figures is not None else FIGURE_NAMES
    plans: Dict[str, Plan] = {}
    all_specs: List[RunSpec] = []
    for name in names:
        if name not in FIGURES:
            raise ConfigurationError(
                f"unknown figure {name!r}; expected one of {', '.join(FIGURES)}"
            )
        definition = FIGURES[name]
        if definition.workload_kind == "mixes":
            chosen = mixes
        elif definition.workload_kind == "traces":
            chosen = workloads
        else:
            chosen = None
        validate_figure_workloads(name, chosen)
        plan = definition.plan(scale, chosen)
        plans[name] = plan
        all_specs.extend(plan[0])
    overrides = _figure_overrides(faults, warmup, early_stop)
    if overrides:
        twins = {
            spec: replace(spec, **overrides)
            for spec in dict.fromkeys(all_specs)
        }
        twin_results = execute_specs(
            list(twins.values()), executor=executor, store=store
        )
        results = {
            original: twin_results[twin] for original, twin in twins.items()
        }
    else:
        results = execute_specs(all_specs, executor=executor, store=store)
    return {name: plan[1](results) for name, plan in plans.items()}
