"""Canonical run specifications: the unit of experiment orchestration.

A :class:`RunSpec` names everything needed to reproduce one simulation run
-- design, Table 1 preset, workload (trace or mix), experiment scale,
optional geometry override, and device keyword arguments -- as a frozen,
hashable, JSON-round-trippable value.  Because a spec is *declarative* (it
carries names and knobs, never live objects), it can be

* hashed into a stable content digest (:attr:`RunSpec.digest`) that keys the
  result store,
* pickled across process boundaries so the parallel executor rebuilds the
  config and trace inside each worker, and
* deduplicated across figures that share slices of the same
  (design x preset x workload) matrix.

The materialization helpers (``build_config`` / ``trace_for`` / pressure
acceleration) live here too; :mod:`repro.experiments.runner` re-exports them
so existing callers keep working.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from pathlib import Path

from repro.config.presets import canonical_preset_name, preset_by_name
from repro.config.ssd_config import DesignKind, SsdConfig
from repro.errors import ConfigurationError, WorkloadError
from repro.metrics.collector import RunResult
from repro.sim.checkpoint import WarmupPhase, restore_device, snapshot_device
from repro.sim.convergence import EarlyStopPolicy
from repro.sim.faults import FaultSchedule
from repro.sim.stats import exact_stats_default
from repro.ssd.device import SsdDevice
from repro.ssd.factory import supports_geometry
from repro.workloads.catalog import generate_workload
from repro.workloads.formats import resolve_trace_path, trace_digest, trace_stem
from repro.workloads.mixes import generate_mix
from repro.workloads.replay import TraceWorkload
from repro.workloads.synthetic import SyntheticGenerator, WorkloadSpec
from repro.workloads.trace import Trace

#: Workload-name prefix that designates an explicit trace file:
#: ``"trace:/path/to/hm_0.csv"`` anywhere a workload name is accepted.
TRACE_WORKLOAD_PREFIX = "trace:"

# The comparison sets used by the figures.
PRIOR_DESIGNS = (
    DesignKind.PSSD,
    DesignKind.PNSSD,
    DesignKind.NOSSD,
)
ALL_DESIGNS = (
    DesignKind.BASELINE,
    DesignKind.PSSD,
    DesignKind.PNSSD,
    DesignKind.NOSSD,
    DesignKind.VENICE,
    DesignKind.IDEAL,
)

# Scalars a spec may carry in ``device_kwargs``: anything JSON encodes
# canonically.  Live objects (caches, power models) would break hashing and
# cross-process rebuilds, so they are rejected at spec construction.
Scalar = Union[bool, int, float, str, None]


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs so experiments run at paper scale or benchmark scale.

    The array *geometry* (channels x chips) is never scaled -- it determines
    path-conflict behaviour.  Only the per-plane capacity (irrelevant to
    conflicts, hugely relevant to Python runtime) and trace length shrink.
    """

    requests: int = 1200
    requests_per_mix_constituent: int = 400
    blocks_per_plane: int = 64
    pages_per_block: int = 64
    footprint_fraction: float = 0.5
    queue_pairs: int = 4
    seed: int = 42
    # Trace acceleration: enterprise traces are replayed accelerated so the
    # device, not the recorded arrival process, is the bottleneck --
    # execution-time speedups (Figures 4/9/12) only exist under load.
    # ``target_pressure`` is the aggregate demand placed on the baseline's
    # channels (1.0 = exactly the baseline's aggregate channel bandwidth);
    # each trace is compressed in time to meet it, never stretched.  Mixes
    # run hotter, as the paper notes they are ("higher intensity of I/O
    # requests", §5).
    target_pressure: float = 1.6
    mix_target_pressure: float = 1.8
    max_acceleration: float = 256.0

    @classmethod
    def benchmark(cls) -> "ExperimentScale":
        """Small scale for pytest-benchmark runs."""
        return cls(
            requests=300,
            requests_per_mix_constituent=120,
            blocks_per_plane=32,
            pages_per_block=32,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Larger scale for standalone reproduction runs."""
        return cls(
            requests=5000,
            requests_per_mix_constituent=1700,
            blocks_per_plane=128,
            pages_per_block=128,
        )


def build_config(preset: str, scale: ExperimentScale) -> SsdConfig:
    """A Table 1 preset at the experiment scale."""
    return preset_by_name(
        preset,
        blocks_per_plane=scale.blocks_per_plane,
        pages_per_block=scale.pages_per_block,
        seed=scale.seed,
    )


def footprint_for(config: SsdConfig, scale: ExperimentScale) -> int:
    usable = int(config.geometry.capacity_bytes * (1.0 - config.over_provisioning))
    return max(1 << 20, int(usable * scale.footprint_fraction))


def channel_pressure(trace: Trace, config: SsdConfig) -> float:
    """Aggregate demand relative to the baseline's total channel bandwidth.

    1.0 means the trace, replayed as recorded, offers exactly as many
    page-transfer nanoseconds per nanosecond as the baseline's channels can
    serve in aggregate.
    """
    page = config.geometry.page_size
    per_page_ns = config.interconnect.channel_transfer_ns(page)
    total_pages = sum(
        (request.size_bytes + page - 1) // page for request in trace.requests
    )
    duration = max(1, trace.duration_ns)
    return total_pages * per_page_ns / (duration * config.geometry.channels)


def accelerate_to_pressure(
    trace: Trace, config: SsdConfig, target: float, max_acceleration: float
) -> Trace:
    """Compress a trace's arrival gaps until it offers ``target`` pressure.

    Traces already at or above the target replay as recorded (never
    stretched); the acceleration factor is capped so ultra-sparse traces
    (e.g. LUN3 at 3.1 ms mean inter-arrival) stay recognisably sparse.
    """
    current = channel_pressure(trace, config)
    if current <= 0 or current >= target:
        return trace
    factor = min(max_acceleration, target / current)
    if factor <= 1.0:
        return trace
    return trace.scaled_arrivals(1.0 / factor, name=trace.name)


def trace_for(
    workload: str,
    config: SsdConfig,
    scale: ExperimentScale,
    *,
    mix: bool = False,
    trace_path: Optional[str] = None,
    trace_options: Mapping[str, Scalar] = (),
) -> Trace:
    """Materialize a spec's workload at the experiment scale.

    With ``trace_path``, replay that file through
    :class:`~repro.workloads.replay.TraceWorkload` (``trace_options`` are
    its replay knobs).  Otherwise generation is pinned to ``"synthetic"``
    rather than ``"auto"``: a spec that recorded no trace file must simulate
    identically whether or not ``VENICE_TRACE_DIR`` is set at execution
    time -- the environment is consulted once, in :func:`make_spec`.
    Pressure acceleration applies identically to both sources.
    """
    footprint = footprint_for(config, scale)
    if mix:
        trace = generate_mix(
            workload,
            count_per_constituent=scale.requests_per_mix_constituent,
            footprint_bytes=footprint,
            seed=scale.seed,
        )
        return accelerate_to_pressure(
            trace, config, scale.mix_target_pressure, scale.max_acceleration
        )
    if trace_path is not None:
        trace = TraceWorkload(
            trace_path, name=workload, **dict(trace_options)
        ).generate(scale.requests, footprint)
    else:
        trace = generate_workload(
            workload,
            count=scale.requests,
            footprint_bytes=footprint,
            seed=scale.seed,
            source="synthetic",
        )
    return accelerate_to_pressure(
        trace, config, scale.target_pressure, scale.max_acceleration
    )


#: The fixed synthetic aging workload a warm-up phase's ``steps`` replay:
#: write-heavy, moderately sized, bursty enough to open blocks across the
#: array.  It is deliberately *not* the spec's measured workload -- warm-up
#: must be workload-independent so every cell of a (design x workload)
#: matrix shares one checkpoint per design.
_WARMUP_WORKLOAD = WorkloadSpec(
    name="checkpoint-warmup",
    read_pct=20.0,
    avg_size_kb=16.0,
    avg_interarrival_us=20.0,
)

#: Scale fields that shape the warmed-up device state.  Request counts and
#: pressure targets only shape the *measured* phase, so they stay out of the
#: checkpoint digest and an entire sweep shares one warm-up per design.
_CHECKPOINT_SCALE_FIELDS = (
    "blocks_per_plane",
    "pages_per_block",
    "footprint_fraction",
    "queue_pairs",
    "seed",
)


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified simulation run, by value.

    Use :func:`make_spec` rather than the constructor directly: it normalises
    design names, geometry tuples, and device-kwarg ordering so that equal
    runs always compare (and hash, and digest) equal.

    Trace-backed runs carry three extra fields: ``trace_path`` (where the
    file was when the spec was built), ``trace_digest`` (the canonical
    content digest from :func:`repro.workloads.formats.trace_digest`), and
    ``trace_options`` (replay knobs -- ``time_scale``, ``lba_policy``).
    The *content digest and options* enter the spec's identity;
    the *path* does not, so the same trace cached from two locations shares
    one store entry, and a file that changes under a recorded path is
    detected (:meth:`verify_trace`) instead of silently served stale.

    ``faults`` carries a fault schedule in its canonical grammar form
    (:meth:`repro.sim.faults.FaultSchedule.to_spec`); it participates in the
    digest, so a faulted run and its pristine twin are distinct cache
    entries.  The empty schedule is a strict no-op: it is omitted from the
    canonical payload entirely, so pre-fault spec digests (and their store
    entries) are unchanged.

    ``fleet`` marks this spec as one member device of a multi-SSD fleet:
    it carries the canonical member descriptor
    (:meth:`repro.fleet.member.FleetMember.to_spec` -- index/shape,
    tenant count, placement policy, optional burst clause), which selects
    the device's dispatcher share of the fleet's tenant traffic instead
    of the plain workload trace.  Like ``faults``, it participates in the
    digest and the empty descriptor is a strict no-op (key omitted,
    pre-fleet digests unchanged).

    ``qos`` names the dispatcher QoS policy
    (:func:`repro.fleet.qos.canonical_qos` grammar) applied to the merged
    tenant stream before placement; it requires ``fleet`` (QoS schedules
    tenants, and only fleet members have them).  Same contract again:
    canonicalised, digest-joining, and the empty policy is a strict no-op
    (key omitted, pre-QoS digests and results unchanged).

    ``warmup`` declares a warm-up phase in its canonical grammar form
    (:meth:`repro.sim.checkpoint.WarmupPhase.to_spec`): the measured phase
    then starts from a checkpointed device state instead of a pristine one.
    ``early_stop`` declares a steady-state convergence policy
    (:meth:`repro.sim.convergence.EarlyStopPolicy.to_spec`) that may halt
    the measured phase early and extrapolate to the full horizon.  Both
    participate in the digest and both are strict no-ops when empty (keys
    omitted; exact-mode digests, store entries, and results are
    bit-identical to a library without either feature).
    """

    design: str
    preset: str
    workload: str
    scale: ExperimentScale = field(default_factory=ExperimentScale)
    mix: bool = False
    with_cdf: bool = False
    geometry: Optional[Tuple[int, int]] = None  # (channels, chips_per_channel)
    device_kwargs: Tuple[Tuple[str, Scalar], ...] = ()
    trace_path: Optional[str] = None
    trace_digest: Optional[str] = None
    trace_options: Tuple[Tuple[str, Scalar], ...] = ()
    faults: str = ""
    fleet: str = ""
    warmup: str = ""
    early_stop: str = ""
    qos: str = ""

    def __post_init__(self) -> None:
        DesignKind.from_name(self.design)  # validate eagerly
        # Canonicalise preset aliases ('perf' == 'performance-optimized') so
        # identical runs share one digest and therefore one cache entry.
        object.__setattr__(self, "preset", canonical_preset_name(self.preset))
        for key, value in self.device_kwargs:
            if not (value is None or isinstance(value, (bool, int, float, str))):
                raise ConfigurationError(
                    f"device kwarg {key!r} must be a JSON scalar, got "
                    f"{type(value).__name__}"
                )
        for key, value in self.trace_options:
            if not (value is None or isinstance(value, (bool, int, float, str))):
                raise ConfigurationError(
                    f"trace option {key!r} must be a JSON scalar, got "
                    f"{type(value).__name__}"
                )
        if (self.trace_path is None) != (self.trace_digest is None):
            raise ConfigurationError(
                "trace_path and trace_digest must be set together (the "
                "digest is the content identity, the path is how to reach it)"
            )
        if self.trace_path is None and self.trace_options:
            raise ConfigurationError(
                "trace_options require a trace-backed spec"
            )
        if self.mix and self.trace_path is not None:
            raise ConfigurationError(
                "a spec cannot be both a Table 3 mix and a trace replay"
            )
        if self.faults:
            # Canonicalise (and validate) the schedule so equal schedules --
            # regardless of clause order, units, or whitespace -- digest and
            # cache identically.
            object.__setattr__(
                self, "faults", FaultSchedule.parse(self.faults).to_spec()
            )
        if self.fleet:
            # Same canonicalisation contract as faults.  Imported lazily:
            # repro.fleet.spec imports this module, so a module-level
            # import here would be circular.
            from repro.fleet.member import FleetMember

            object.__setattr__(
                self, "fleet", FleetMember.parse(self.fleet).to_spec()
            )
        if self.warmup:
            # Same canonicalisation contract as faults: clause order,
            # number formatting, and whitespace never split the digest.
            object.__setattr__(
                self, "warmup", WarmupPhase.parse(self.warmup).to_spec()
            )
        if self.early_stop:
            object.__setattr__(
                self,
                "early_stop",
                EarlyStopPolicy.parse(self.early_stop).to_spec(),
            )
        if self.qos:
            # Same canonicalisation contract (and the same lazy import
            # as ``fleet``: repro.fleet imports this module).
            from repro.fleet.qos import canonical_qos

            object.__setattr__(self, "qos", canonical_qos(self.qos))
        if self.qos and not self.fleet:
            raise ConfigurationError(
                "qos schedules a fleet's tenant streams; it requires a "
                "fleet member spec (use make_fleet_spec(qos=...))"
            )

    # -- identity ------------------------------------------------------- #

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form; ``from_dict`` inverts it losslessly.

        The ``faults`` and ``fleet`` keys appear only for faulted / fleet
        -member specs: omitting the empty values keeps the canonical
        payload -- and therefore every pre-existing spec digest and store
        entry -- bit-identical to a version of the library without fault
        injection or fleet support.
        """
        payload: Dict[str, object] = {
            "design": self.design,
            "preset": self.preset,
            "workload": self.workload,
            "scale": asdict(self.scale),
            "mix": self.mix,
            "with_cdf": self.with_cdf,
            "geometry": list(self.geometry) if self.geometry else None,
            "device_kwargs": {key: value for key, value in self.device_kwargs},
            "trace_path": self.trace_path,
            "trace_digest": self.trace_digest,
            "trace_options": {key: value for key, value in self.trace_options},
        }
        if self.faults:
            payload["faults"] = self.faults
        if self.fleet:
            payload["fleet"] = self.fleet
        if self.warmup:
            payload["warmup"] = self.warmup
        if self.early_stop:
            payload["early_stop"] = self.early_stop
        if self.qos:
            payload["qos"] = self.qos
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (lossless inverse)."""
        geometry = payload.get("geometry")
        trace_path = payload.get("trace_path")
        return cls(
            design=str(payload["design"]),
            preset=str(payload["preset"]),
            workload=str(payload["workload"]),
            scale=ExperimentScale(**payload["scale"]),
            mix=bool(payload["mix"]),
            with_cdf=bool(payload["with_cdf"]),
            geometry=(int(geometry[0]), int(geometry[1])) if geometry else None,
            device_kwargs=tuple(
                sorted((str(k), v) for k, v in dict(payload["device_kwargs"]).items())
            ),
            trace_path=str(trace_path) if trace_path is not None else None,
            trace_digest=(
                str(payload["trace_digest"])
                if payload.get("trace_digest") is not None
                else None
            ),
            trace_options=tuple(
                sorted(
                    (str(k), v)
                    for k, v in dict(payload.get("trace_options") or {}).items()
                )
            ),
            faults=str(payload.get("faults") or ""),
            fleet=str(payload.get("fleet") or ""),
            warmup=str(payload.get("warmup") or ""),
            early_stop=str(payload.get("early_stop") or ""),
            qos=str(payload.get("qos") or ""),
        )

    @property
    def digest(self) -> str:
        """Stable content address: sha256 over the canonical JSON form.

        ``trace_path`` is excluded: a trace-backed run is identified by its
        *content* digest (plus replay options), so the same trace replayed
        from different directories -- or different machines -- shares one
        cache entry.
        """
        payload = self.to_dict()
        del payload["trace_path"]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def checkpoint_digest(self) -> str:
        """Content address of this spec's warmed-up device state.

        Only the sub-spec that shapes the warm-up enters the digest: design,
        preset, geometry override, device kwargs, the warm-up recipe itself,
        and the scale fields that size the array and seed its RNG streams.
        The *measured* phase -- workload, request counts, pressure targets,
        CDF export, fault schedule (injected at measured-phase start, on a
        pristine fabric during warm-up), fleet descriptor -- is excluded, so
        every cell of a (workload x faults) sweep that shares a design
        reuses one warm-up simulation.  Raises
        :class:`~repro.errors.ConfigurationError` on a spec without a
        warm-up phase.
        """
        if not self.warmup:
            raise ConfigurationError(
                f"{self.label()} declares no warm-up phase"
            )
        scale = asdict(self.scale)
        payload = {
            "design": self.design,
            "preset": self.preset,
            "geometry": list(self.geometry) if self.geometry else None,
            "device_kwargs": {key: value for key, value in self.device_kwargs},
            "warmup": self.warmup,
            "scale": {key: scale[key] for key in _CHECKPOINT_SCALE_FIELDS},
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def design_kind(self) -> DesignKind:
        return DesignKind.from_name(self.design)

    def label(self) -> str:
        geometry = f" {self.geometry[0]}x{self.geometry[1]}" if self.geometry else ""
        return f"{self.design}/{self.preset}/{self.workload}{geometry}"

    # -- materialization ------------------------------------------------ #

    def build_config(self) -> SsdConfig:
        config = build_config(self.preset, self.scale)
        if self.geometry is not None:
            config = config.with_geometry(*self.geometry)
        return config

    def build_trace(self, config: Optional[SsdConfig] = None) -> Trace:
        """Materialize this spec's workload (synthetic or trace replay)."""
        config = config or self.build_config()
        return trace_for(
            self.workload,
            config,
            self.scale,
            mix=self.mix,
            trace_path=self.trace_path,
            trace_options=self.trace_options,
        )

    def verify_trace(self) -> None:
        """Check that the recorded trace file is still present and unchanged.

        No-op for synthetic specs.  Raises
        :class:`~repro.errors.WorkloadError` when the file is missing,
        unreadable, or its canonical content digest no longer matches the
        one recorded at spec construction -- a changed file must not be
        served from (or written into) the content-addressed store under the
        old identity.  The executor calls this for every cache-missing spec
        before fanning out to worker processes.
        """
        if self.trace_path is None:
            return
        current = trace_digest(self.trace_path)
        if current != self.trace_digest:
            raise WorkloadError(
                f"trace file {self.trace_path} changed since the spec for "
                f"{self.label()} was built (digest {current[:12]}… != recorded "
                f"{self.trace_digest[:12]}…); rebuild the spec"
            )

    def fleet_requests(self, config: Optional[SsdConfig] = None):
        """This fleet member's dispatched traffic share (may be empty).

        Builds the base workload exactly like :meth:`build_trace` (same
        generators, same pressure acceleration), fans it out across the
        descriptor's tenants, and dispatches through the placement policy,
        keeping only this member's fragments -- see
        :func:`repro.fleet.member.member_requests`.  Raises
        :class:`~repro.errors.ConfigurationError` on a non-fleet spec.
        """
        if not self.fleet:
            raise ConfigurationError(
                f"{self.label()} is not a fleet member spec"
            )
        from repro.fleet.member import FleetMember, member_requests

        config = config or self.build_config()
        base = self.build_trace(config)
        return member_requests(
            FleetMember.parse(self.fleet),
            base,
            footprint_for(config, self.scale),
            self.scale.queue_pairs,
            self.scale.seed,
            qos=self.qos,
        )

    def _build_device(self, config: SsdConfig, *, with_faults: bool) -> SsdDevice:
        """Construct the device this spec describes (geometry-validated)."""
        design = self.design_kind
        if not supports_geometry(design, config):
            raise ConfigurationError(
                f"{self.design} does not support a "
                f"{config.geometry.channels}x{config.geometry.chips_per_channel} array"
            )
        device_kwargs = dict(self.device_kwargs)
        # Pin the stats mode: specs that do not carry exact_stats always run
        # in the default histogram mode, so the run is a pure function of
        # the spec (the VENICE_EXACT_STATS environment switch is folded into
        # device_kwargs by make_spec, at spec-construction time).
        device_kwargs.setdefault("exact_stats", False)
        return SsdDevice(
            config,
            design,
            queue_pairs=self.scale.queue_pairs,
            faults=(self.faults or None) if with_faults else None,
            **device_kwargs,
        )

    def compute_checkpoint(self) -> Tuple[dict, int]:
        """Simulate this spec's warm-up phase on a throwaway device.

        Returns ``(state, events)``: the canonical device snapshot (see
        :func:`repro.sim.checkpoint.snapshot_device`) and the number of
        engine events the warm-up cost.  The throwaway device is built
        *without* the spec's fault schedule -- faults belong to the
        measured phase (the checkpoint digest excludes them), so a whole
        failure sweep shares one warm image.
        """
        phase = WarmupPhase.parse(self.warmup)
        config = self.build_config()
        device = self._build_device(config, with_faults=False)
        if phase.fill:
            device.precondition(phase.fill)
        if phase.churn:
            device.churn(phase.churn)
        if phase.steps:
            trace = SyntheticGenerator(
                _WARMUP_WORKLOAD, seed=self.scale.seed
            ).generate(phase.steps, footprint_for(config, self.scale))
            device.run_trace(trace.requests, "checkpoint-warmup")
        return snapshot_device(device), device.engine.processed_events

    def execute_instrumented(self, checkpoints=None) -> Tuple[RunResult, Dict[str, object]]:
        """Run the simulation and report how much simulating it took.

        Returns ``(result, info)`` where ``info`` records ``events`` (engine
        events of the measured phase), ``warmup_events`` (events spent
        computing a warm-up checkpoint in-process; 0 when restored from
        ``checkpoints`` or when the spec has no warm-up),
        ``checkpoint_restored``, ``early_stopped``, and
        ``simulated_requests``.  With an empty ``warmup`` and ``early_stop``
        the code path -- and therefore the result -- is exactly the legacy
        exact run.
        """
        config = self.build_config()
        info: Dict[str, object] = {
            "events": 0,
            "warmup_events": 0,
            "checkpoint_restored": False,
            "early_stopped": False,
            "simulated_requests": 0,
        }
        state = None
        if self.warmup:
            digest = self.checkpoint_digest
            if checkpoints is not None:
                state = checkpoints.get(digest)
            if state is not None:
                info["checkpoint_restored"] = True
            else:
                state, warmup_events = self.compute_checkpoint()
                info["warmup_events"] = warmup_events
                if checkpoints is not None:
                    checkpoints.put(digest, state)
        device = self._build_device(config, with_faults=True)
        if state is not None:
            restore_device(device, state)
        early_stop = self.early_stop or None
        if self.fleet:
            result = device.run_trace(
                self.fleet_requests(config),
                self.workload,
                with_cdf=self.with_cdf,
                allow_empty=True,
                early_stop=early_stop,
            )
        else:
            trace = self.build_trace(config)
            result = device.run_trace(
                trace.requests,
                trace.name,
                with_cdf=self.with_cdf,
                early_stop=early_stop,
            )
        info["events"] = device.engine.processed_events
        info["early_stopped"] = bool(result.extra.get("early_stop_converged"))
        info["simulated_requests"] = int(
            result.extra.get(
                "early_stop_simulated_requests", result.requests_completed
            )
        )
        return result, info

    def execute(self, checkpoints=None) -> RunResult:
        """Rebuild config and trace from the spec and run the simulation.

        This is the function the executor workers call: everything is
        reconstructed from the spec's plain values, so a run behaves
        identically whether it executes in-process or in a forked worker.
        Fleet member specs replay their dispatcher share of the fleet's
        tenant traffic instead of the plain workload trace; an empty share
        (more devices than requests) finalizes to an all-zero result.
        ``checkpoints`` optionally supplies a
        :class:`~repro.sim.checkpoint.CheckpointStore` that warm-up-bearing
        specs consult (and populate) instead of re-simulating warm-up.
        """
        return self.execute_instrumented(checkpoints)[0]


def make_spec(
    design: Union[DesignKind, str],
    preset: str,
    workload: str,
    scale: Optional[ExperimentScale] = None,
    *,
    mix: bool = False,
    with_cdf: bool = False,
    geometry: Optional[Sequence[int]] = None,
    trace: Optional[Union[str, Path]] = None,
    trace_options: Optional[Mapping[str, Scalar]] = None,
    faults: Optional[Union[str, FaultSchedule]] = None,
    fleet: Optional[str] = None,
    warmup: Optional[Union[str, WarmupPhase]] = None,
    early_stop: Optional[Union[str, EarlyStopPolicy]] = None,
    qos: Optional[str] = None,
    **device_kwargs: Scalar,
) -> RunSpec:
    """Build a normalised :class:`RunSpec` (the preferred constructor).

    Environment-dependent choices are resolved *here*, at spec
    construction, and recorded in the spec (hence in the digest): a
    content-addressed result must not depend on the environment at
    execution time, or a shared cache would serve mismatched results.
    Concretely:

    * the ``VENICE_EXACT_STATS`` switch is folded into ``device_kwargs``;
    * a workload named ``trace:<path>`` (or an explicit ``trace=`` path)
      is resolved to its canonical content digest, and the spec's workload
      becomes the file's stem;
    * otherwise, when ``VENICE_TRACE_DIR`` holds a real trace file for the
      workload name, that file's path and digest are recorded, so the run
      replays the real trace; synthetic generation is the fallback.

    ``trace_options`` forwards replay knobs (``time_scale``,
    ``lba_policy``) to :class:`~repro.workloads.replay.TraceWorkload`; they
    participate in the digest.

    ``faults`` accepts a :class:`~repro.sim.faults.FaultSchedule` or its
    grammar string; it is canonicalised into the spec (and the digest).
    ``None``/empty means a pristine fabric and leaves the digest untouched.

    ``fleet`` accepts a fleet member descriptor string
    (:class:`~repro.fleet.member.FleetMember` grammar); prefer
    :func:`repro.fleet.spec.make_fleet_spec`, which builds consistent
    descriptors for every member of a fleet.  ``None``/empty means an
    ordinary single-device run and leaves the digest untouched.
    ``qos`` accepts a dispatcher QoS policy string
    (:func:`repro.fleet.qos.canonical_qos` grammar); it requires
    ``fleet`` and is likewise a strict no-op when ``None``/empty.

    ``warmup`` accepts a :class:`~repro.sim.checkpoint.WarmupPhase` or its
    grammar string (``"fill 0.5; steps 400"``); ``early_stop`` accepts an
    :class:`~repro.sim.convergence.EarlyStopPolicy` or its grammar string
    (``"window 100; tolerance 0.01; patience 2; min 200"``).  Both are
    canonicalised into the spec and the digest; ``None``/empty means the
    exact legacy run and leaves the digest untouched.
    """
    if "exact_stats" not in device_kwargs and exact_stats_default():
        device_kwargs["exact_stats"] = True
    name = design.value if isinstance(design, DesignKind) else str(design).lower()
    if workload.startswith(TRACE_WORKLOAD_PREFIX):
        explicit = workload[len(TRACE_WORKLOAD_PREFIX):]
        if not explicit:
            raise ConfigurationError(
                f"empty trace path in workload name {workload!r}"
            )
        if trace is not None and str(trace) != explicit:
            raise ConfigurationError(
                f"workload {workload!r} and trace={str(trace)!r} disagree"
            )
        trace = explicit
    trace_path: Optional[str] = None
    content_digest: Optional[str] = None
    if trace is not None:
        if mix:
            raise ConfigurationError(
                "a Table 3 mix cannot be trace-backed; replay the file as a "
                "plain workload instead"
            )
        resolved = Path(trace).expanduser()
        trace_path = str(resolved)
        content_digest = trace_digest(resolved)  # raises if unreadable/invalid
        workload = trace_stem(resolved)
    elif not mix:
        found = resolve_trace_path(workload)
        if found is not None:
            trace_path = str(found)
            content_digest = trace_digest(found)
    if isinstance(faults, FaultSchedule):
        faults = faults.to_spec()
    if isinstance(warmup, WarmupPhase):
        warmup = warmup.to_spec()
    if isinstance(early_stop, EarlyStopPolicy):
        early_stop = early_stop.to_spec()
    return RunSpec(
        design=name,
        preset=preset,
        workload=workload,
        scale=scale or ExperimentScale(),
        mix=mix,
        with_cdf=with_cdf,
        geometry=(int(geometry[0]), int(geometry[1])) if geometry else None,
        device_kwargs=tuple(sorted(device_kwargs.items())),
        trace_path=trace_path,
        trace_digest=content_digest,
        trace_options=tuple(sorted((trace_options or {}).items())),
        faults=faults or "",
        fleet=fleet or "",
        warmup=warmup or "",
        early_stop=early_stop or "",
        qos=qos or "",
    )


def matrix_specs(
    preset: str,
    workloads: Sequence[str],
    scale: ExperimentScale,
    designs: Sequence[DesignKind] = ALL_DESIGNS,
    *,
    mix: bool = False,
    with_cdf: bool = False,
    geometry: Optional[Sequence[int]] = None,
    faults: Optional[Union[str, FaultSchedule]] = None,
    warmup: Optional[Union[str, WarmupPhase]] = None,
    early_stop: Optional[Union[str, EarlyStopPolicy]] = None,
    **device_kwargs: Scalar,
) -> Tuple[RunSpec, ...]:
    """The spec set of one (workload x design) matrix slice.

    Designs whose geometry requirements the config violates (pnSSD on a
    non-square array) are skipped, matching the paper's Figure 15 footnote.
    ``faults`` applies one fault schedule to every spec of the slice
    (failure sweeps compare designs under identical fault sets); ``warmup``
    and ``early_stop`` likewise apply one amortization recipe to every
    spec, which is what lets the whole slice share per-design checkpoints.
    """
    probe = build_config(preset, scale)
    if geometry is not None:
        probe = probe.with_geometry(int(geometry[0]), int(geometry[1]))
    return tuple(
        make_spec(
            design,
            preset,
            workload,
            scale,
            mix=mix,
            with_cdf=with_cdf,
            geometry=geometry,
            faults=faults,
            warmup=warmup,
            early_stop=early_stop,
            **device_kwargs,
        )
        for workload in workloads
        for design in designs
        if supports_geometry(design, probe)
    )
