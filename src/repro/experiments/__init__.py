"""Experiment harness: declarative run specs, executors, and figures.

The orchestration stack, bottom-up:

* :mod:`repro.experiments.spec` -- :class:`RunSpec`, the canonical hashable
  description of one simulation run, plus config/trace materialization;
* :mod:`repro.experiments.executor` -- serial and multiprocessing backends
  that execute spec sets (rebuilding everything inside each worker);
* :mod:`repro.experiments.store` -- the content-addressed JSON result store
  keyed by spec digest (flat / sharded / SQLite layouts), so repeated
  invocations reuse prior runs;
* :mod:`repro.experiments.queue` / :mod:`repro.experiments.worker` -- the
  crash-safe filesystem work queue and its worker / executor front ends,
  for sweeps shared by several processes or hosts;
* :mod:`repro.experiments.figures` -- one declaration per paper figure:
  a spec set plus a pure reducer over the shared cached results.

Every function returns plain data structures (dicts / dataclasses) that the
reporting helpers render as text tables; the benchmark suite calls the same
functions at reduced scale.
"""

from repro.experiments.executor import (
    ParallelExecutor,
    SerialExecutor,
    execute_specs,
    make_executor,
)
from repro.experiments.figures import (
    FIGURE_NAMES,
    FIGURES,
    fig4_motivation,
    fig9_speedup,
    fig10_throughput,
    fig11_tail_latency,
    fig12_mixed,
    fig13_conflicts,
    fig14_power_energy,
    fig15_sensitivity,
    run_all_figures,
    run_figure,
    table4_overheads,
    validate_figure_workloads,
)
from repro.experiments.motivation import (
    service_timeline_example,
    TimelineExample,
)
from repro.experiments.reporting import format_table, geometric_mean
from repro.experiments.runner import (
    ExperimentScale,
    build_config,
    make_device,
    run_design_suite,
    run_suite,
    run_workload_on,
)
from repro.experiments.queue import Task, WorkQueue, default_owner_id
from repro.experiments.spec import RunSpec, make_spec, matrix_specs
from repro.experiments.store import BACKEND_NAMES, ResultStore, StoreBackend
from repro.experiments.worker import QueueExecutor, QueueWorker

__all__ = [
    "BACKEND_NAMES",
    "ExperimentScale",
    "FIGURE_NAMES",
    "FIGURES",
    "ParallelExecutor",
    "QueueExecutor",
    "QueueWorker",
    "ResultStore",
    "RunSpec",
    "SerialExecutor",
    "StoreBackend",
    "Task",
    "TimelineExample",
    "WorkQueue",
    "build_config",
    "default_owner_id",
    "execute_specs",
    "fig4_motivation",
    "fig9_speedup",
    "fig10_throughput",
    "fig11_tail_latency",
    "fig12_mixed",
    "fig13_conflicts",
    "fig14_power_energy",
    "fig15_sensitivity",
    "format_table",
    "geometric_mean",
    "make_device",
    "make_executor",
    "make_spec",
    "matrix_specs",
    "run_all_figures",
    "run_design_suite",
    "run_figure",
    "run_suite",
    "run_workload_on",
    "service_timeline_example",
    "table4_overheads",
    "validate_figure_workloads",
]
