"""Experiment harness: one entry point per paper figure/table.

See DESIGN.md §4 for the experiment index.  Every function returns plain
data structures (dicts / dataclasses) that the reporting helpers render as
text tables; the benchmark suite calls the same functions at reduced scale.
"""

from repro.experiments.runner import (
    ExperimentScale,
    build_config,
    make_device,
    run_workload_on,
    run_design_suite,
)
from repro.experiments.motivation import (
    service_timeline_example,
    TimelineExample,
)
from repro.experiments.figures import (
    fig4_motivation,
    fig9_speedup,
    fig10_throughput,
    fig11_tail_latency,
    fig12_mixed,
    fig13_conflicts,
    fig14_power_energy,
    fig15_sensitivity,
    table4_overheads,
)
from repro.experiments.reporting import format_table, geometric_mean

__all__ = [
    "ExperimentScale",
    "build_config",
    "make_device",
    "run_workload_on",
    "run_design_suite",
    "service_timeline_example",
    "TimelineExample",
    "fig4_motivation",
    "fig9_speedup",
    "fig10_throughput",
    "fig11_tail_latency",
    "fig12_mixed",
    "fig13_conflicts",
    "fig14_power_energy",
    "fig15_sensitivity",
    "table4_overheads",
    "format_table",
    "geometric_mean",
]
