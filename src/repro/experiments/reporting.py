"""Text-table rendering and summary statistics for experiment output."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import SimulationError

Cell = Union[str, int, float]


def geometric_mean(values: Iterable[float]) -> float:
    """GMEAN, as used for the paper's average speedups."""
    values = [float(value) for value in values]
    if not values:
        raise SimulationError("geometric mean of nothing")
    if any(value <= 0 for value in values):
        raise SimulationError("geometric mean needs positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def _render_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 0.01 or abs(cell) >= 100_000):
            return f"{cell:.3e}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    *,
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table (the harness's figure output format)."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def speedup_table(
    per_workload: Mapping[str, Mapping[str, float]],
    designs: Sequence[str],
    *,
    title: Optional[str] = None,
    mean_label: str = "GMEAN",
) -> str:
    """Render {workload: {design: speedup}} with a geometric-mean row."""
    headers = ["workload"] + list(designs)
    rows: List[List[Cell]] = []
    for workload, values in per_workload.items():
        rows.append([workload] + [values.get(design, float("nan")) for design in designs])
    mean_row: List[Cell] = [mean_label]
    for design in designs:
        series = [
            values[design]
            for values in per_workload.values()
            if design in values and values[design] > 0
        ]
        mean_row.append(geometric_mean(series) if series else float("nan"))
    rows.append(mean_row)
    return format_table(headers, rows, title=title)
