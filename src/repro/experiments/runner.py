"""Running (design x config x workload) matrices, on top of run specs.

The canonical description of a run is :class:`repro.experiments.spec.RunSpec`;
this module re-exports the spec-layer vocabulary (scales, config/trace
builders, design sets) and adds two things:

* the *materialized* path (:func:`run_workload_on` / :func:`run_design_suite`)
  for callers that already hold a config and a trace object (tests, examples,
  ablations), and
* the *declarative* path (:func:`suite_specs` / :func:`run_suite`) that
  routes named workloads through the executor and result store, which is what
  the CLI and figure layer build on.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.experiments.executor import execute_specs
from repro.experiments.spec import (
    ALL_DESIGNS,
    PRIOR_DESIGNS,
    ExperimentScale,
    RunSpec,
    Scalar,
    accelerate_to_pressure,
    build_config,
    channel_pressure,
    footprint_for,
    make_spec,
    matrix_specs,
    trace_for,
)
from repro.metrics.collector import RunResult
from repro.ssd.device import SsdDevice
from repro.ssd.factory import supports_geometry
from repro.workloads.trace import Trace

__all__ = [
    "ALL_DESIGNS",
    "PRIOR_DESIGNS",
    "ExperimentScale",
    "RunSpec",
    "accelerate_to_pressure",
    "build_config",
    "channel_pressure",
    "footprint_for",
    "make_device",
    "make_spec",
    "matrix_specs",
    "run_design_suite",
    "run_suite",
    "run_workload_on",
    "suite_specs",
    "trace_for",
]


def make_device(
    config: SsdConfig,
    design: DesignKind,
    scale: ExperimentScale,
    **device_kwargs,
) -> SsdDevice:
    return SsdDevice(
        config, design, queue_pairs=scale.queue_pairs, **device_kwargs
    )


def run_workload_on(
    design: DesignKind,
    config: SsdConfig,
    trace: Trace,
    scale: ExperimentScale,
    *,
    with_cdf: bool = False,
    **device_kwargs,
) -> RunResult:
    """One simulation run: fresh device, replay, metrics.

    This is the materialized primitive for callers holding live config/trace
    objects; named workloads should go through :func:`run_suite` (or specs
    directly) to get caching and parallelism.
    """
    device = make_device(config, design, scale, **device_kwargs)
    return device.run_trace(trace.requests, trace.name, with_cdf=with_cdf)


def run_design_suite(
    config: SsdConfig,
    trace: Trace,
    scale: ExperimentScale,
    designs: Sequence[DesignKind] = ALL_DESIGNS,
    *,
    with_cdf: bool = False,
    **device_kwargs,
) -> Dict[str, RunResult]:
    """Run one materialized trace across a set of designs; key by design name.

    Designs whose geometry requirements the config violates (pnSSD on a
    non-square array) are skipped, matching the paper's Figure 15 footnote.
    """
    results: Dict[str, RunResult] = {}
    for design in designs:
        if not supports_geometry(design, config):
            continue
        results[design.value] = run_workload_on(
            design, config, trace, scale, with_cdf=with_cdf, **device_kwargs
        )
    return results


def suite_specs(
    preset: str,
    workload: str,
    scale: ExperimentScale,
    designs: Sequence[DesignKind] = ALL_DESIGNS,
    *,
    mix: bool = False,
    with_cdf: bool = False,
    geometry: Optional[Sequence[int]] = None,
    **device_kwargs: Scalar,
) -> Sequence[RunSpec]:
    """Specs for one named workload across a design set."""
    return matrix_specs(
        preset,
        (workload,),
        scale,
        designs,
        mix=mix,
        with_cdf=with_cdf,
        geometry=geometry,
        **device_kwargs,
    )


def run_suite(
    preset: str,
    workload: str,
    scale: ExperimentScale,
    designs: Sequence[DesignKind] = ALL_DESIGNS,
    *,
    mix: bool = False,
    with_cdf: bool = False,
    executor=None,
    store=None,
    **device_kwargs: Scalar,
) -> Dict[str, RunResult]:
    """Declarative counterpart of :func:`run_design_suite`.

    Builds the spec set for a *named* workload, executes it through the
    (possibly parallel) executor with store-backed caching, and returns
    results keyed by design name.
    """
    specs = suite_specs(
        preset,
        workload,
        scale,
        designs,
        mix=mix,
        with_cdf=with_cdf,
        **device_kwargs,
    )
    results = execute_specs(specs, executor=executor, store=store)
    return {spec.design: results[spec] for spec in specs}
