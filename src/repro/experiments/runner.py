"""Shared machinery for running (design x config x workload) matrices."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config.presets import preset_by_name
from repro.config.ssd_config import DesignKind, SsdConfig
from repro.metrics.collector import RunResult
from repro.ssd.device import SsdDevice
from repro.ssd.factory import supports_geometry
from repro.workloads.catalog import generate_workload
from repro.workloads.mixes import generate_mix
from repro.workloads.trace import Trace

# The comparison sets used by the figures.
PRIOR_DESIGNS = (
    DesignKind.PSSD,
    DesignKind.PNSSD,
    DesignKind.NOSSD,
)
ALL_DESIGNS = (
    DesignKind.BASELINE,
    DesignKind.PSSD,
    DesignKind.PNSSD,
    DesignKind.NOSSD,
    DesignKind.VENICE,
    DesignKind.IDEAL,
)


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs so experiments run at paper scale or benchmark scale.

    The array *geometry* (channels x chips) is never scaled -- it determines
    path-conflict behaviour.  Only the per-plane capacity (irrelevant to
    conflicts, hugely relevant to Python runtime) and trace length shrink.
    """

    requests: int = 1200
    requests_per_mix_constituent: int = 400
    blocks_per_plane: int = 64
    pages_per_block: int = 64
    footprint_fraction: float = 0.5
    queue_pairs: int = 4
    seed: int = 42
    # Trace acceleration: enterprise traces are replayed accelerated so the
    # device, not the recorded arrival process, is the bottleneck --
    # execution-time speedups (Figures 4/9/12) only exist under load.
    # ``target_pressure`` is the aggregate demand placed on the baseline's
    # channels (1.0 = exactly the baseline's aggregate channel bandwidth);
    # each trace is compressed in time to meet it, never stretched.  Mixes
    # run hotter, as the paper notes they are ("higher intensity of I/O
    # requests", §5).
    target_pressure: float = 1.6
    mix_target_pressure: float = 1.8
    max_acceleration: float = 256.0

    @classmethod
    def benchmark(cls) -> "ExperimentScale":
        """Small scale for pytest-benchmark runs."""
        return cls(
            requests=300,
            requests_per_mix_constituent=120,
            blocks_per_plane=32,
            pages_per_block=32,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Larger scale for standalone reproduction runs."""
        return cls(
            requests=5000,
            requests_per_mix_constituent=1700,
            blocks_per_plane=128,
            pages_per_block=128,
        )


def build_config(preset: str, scale: ExperimentScale) -> SsdConfig:
    """A Table 1 preset at the experiment scale."""
    return preset_by_name(
        preset,
        blocks_per_plane=scale.blocks_per_plane,
        pages_per_block=scale.pages_per_block,
        seed=scale.seed,
    )


def footprint_for(config: SsdConfig, scale: ExperimentScale) -> int:
    usable = int(config.geometry.capacity_bytes * (1.0 - config.over_provisioning))
    return max(1 << 20, int(usable * scale.footprint_fraction))


def channel_pressure(trace: Trace, config: SsdConfig) -> float:
    """Aggregate demand relative to the baseline's total channel bandwidth.

    1.0 means the trace, replayed as recorded, offers exactly as many
    page-transfer nanoseconds per nanosecond as the baseline's channels can
    serve in aggregate.
    """
    page = config.geometry.page_size
    per_page_ns = config.interconnect.channel_transfer_ns(page)
    total_pages = sum(
        (request.size_bytes + page - 1) // page for request in trace.requests
    )
    duration = max(1, trace.duration_ns)
    return total_pages * per_page_ns / (duration * config.geometry.channels)


def accelerate_to_pressure(
    trace: Trace, config: SsdConfig, target: float, max_acceleration: float
) -> Trace:
    """Compress a trace's arrival gaps until it offers ``target`` pressure.

    Traces already at or above the target replay as recorded (never
    stretched); the acceleration factor is capped so ultra-sparse traces
    (e.g. LUN3 at 3.1 ms mean inter-arrival) stay recognisably sparse.
    """
    current = channel_pressure(trace, config)
    if current <= 0 or current >= target:
        return trace
    factor = min(max_acceleration, target / current)
    if factor <= 1.0:
        return trace
    return trace.scaled_arrivals(1.0 / factor, name=trace.name)


def trace_for(
    workload: str, config: SsdConfig, scale: ExperimentScale, *, mix: bool = False
) -> Trace:
    footprint = footprint_for(config, scale)
    if mix:
        trace = generate_mix(
            workload,
            count_per_constituent=scale.requests_per_mix_constituent,
            footprint_bytes=footprint,
            seed=scale.seed,
        )
        return accelerate_to_pressure(
            trace, config, scale.mix_target_pressure, scale.max_acceleration
        )
    trace = generate_workload(
        workload, count=scale.requests, footprint_bytes=footprint, seed=scale.seed
    )
    return accelerate_to_pressure(
        trace, config, scale.target_pressure, scale.max_acceleration
    )


def make_device(
    config: SsdConfig,
    design: DesignKind,
    scale: ExperimentScale,
    **device_kwargs,
) -> SsdDevice:
    return SsdDevice(
        config, design, queue_pairs=scale.queue_pairs, **device_kwargs
    )


def run_workload_on(
    design: DesignKind,
    config: SsdConfig,
    trace: Trace,
    scale: ExperimentScale,
    *,
    with_cdf: bool = False,
    **device_kwargs,
) -> RunResult:
    """One simulation run: fresh device, replay, metrics."""
    device = make_device(config, design, scale, **device_kwargs)
    return device.run_trace(trace.requests, trace.name, with_cdf=with_cdf)


def run_design_suite(
    config: SsdConfig,
    trace: Trace,
    scale: ExperimentScale,
    designs: Sequence[DesignKind] = ALL_DESIGNS,
    *,
    with_cdf: bool = False,
    **device_kwargs,
) -> Dict[str, RunResult]:
    """Run one trace across a set of designs; key by design name.

    Designs whose geometry requirements the config violates (pnSSD on a
    non-square array) are skipped, matching the paper's Figure 15 footnote.
    """
    results: Dict[str, RunResult] = {}
    for design in designs:
        if not supports_geometry(design, config):
            continue
        results[design.value] = run_workload_on(
            design, config, trace, scale, with_cdf=with_cdf, **device_kwargs
        )
    return results
