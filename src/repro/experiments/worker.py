"""Work-queue workers: lease tasks, heartbeat, execute, retry, dead-letter.

Two consumers of :class:`~repro.experiments.queue.WorkQueue` live here:

* :class:`QueueWorker` -- the body of ``venice-sim worker --queue DIR``.
  Any number of them, on any hosts sharing the queue directory, lease
  tasks, keep their leases alive from a heartbeat thread while the
  simulation runs, write results content-addressed into the queue's bound
  result store, and record failures for retry with exponential backoff.
  A worker SIGKILLed mid-task simply stops heartbeating; the lease expires
  and any other participant reclaims the task.

* :class:`QueueExecutor` -- the executor backend behind ``--queue DIR`` on
  ``figure`` / ``matrix`` / ``faults sweep`` / ``fleet sweep``.  It
  enqueues the batch, *participates as a worker itself* (so a queued sweep
  completes even with no external workers), and waits until every task is
  done or dead-lettered.  Because task ids are spec digests and results
  are content-addressed, an interrupted queued sweep re-run converges to
  byte-identical results with zero lost and zero duplicated simulations.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueueError, SimulationError, SpecRunError
from repro.experiments.executor import execute_spec, execute_spec_isolated
from repro.experiments.queue import Task, WorkQueue, default_owner_id
from repro.experiments.spec import RunSpec
from repro.metrics.collector import RunResult
from repro.sim.checkpoint import CheckpointStore


class _HeartbeatThread(threading.Thread):
    """Bump a task's lease mtime every ``interval`` seconds until stopped.

    The simulation itself is single-threaded and can legitimately spend
    longer than a lease between yield points, so liveness is delegated to
    this daemon thread; it dies with the process, which is exactly the
    signal the reaper keys on.
    """

    def __init__(self, queue: WorkQueue, task: Task, interval: float) -> None:
        super().__init__(daemon=True)
        self.queue = queue
        self.task = task
        self.interval = interval
        self.stopped = threading.Event()
        self.lease_lost = threading.Event()

    def run(self) -> None:
        while not self.stopped.wait(self.interval):
            try:
                self.queue.heartbeat(self.task)
            except QueueError:
                # The reaper declared us dead while we were stalled; stop
                # renewing and let the executing thread observe the loss.
                self.lease_lost.set()
                return
            except OSError:  # pragma: no cover - transient shared-fs hiccup
                continue

    def stop(self) -> None:
        self.stopped.set()
        self.join(timeout=2.0)


class QueueWorker:
    """One queue-draining worker process.

    ``max_tasks`` bounds how many tasks this worker executes (``None`` =
    unbounded); ``idle_exit`` makes the worker return once the queue stays
    empty for that many seconds (``None`` = keep polling forever, the
    long-running fleet-host mode).  ``timeout`` is the per-task wall-clock
    limit, enforced by running the simulation in a killable subprocess.
    """

    def __init__(
        self,
        queue: WorkQueue,
        *,
        owner: Optional[str] = None,
        max_tasks: Optional[int] = None,
        idle_exit: Optional[float] = None,
        poll_interval: float = 0.2,
        timeout: Optional[float] = None,
    ) -> None:
        self.queue = queue
        self.owner = owner or default_owner_id()
        self.max_tasks = max_tasks
        self.idle_exit = idle_exit
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.store = queue.result_store()
        self.completed = 0
        self.failed = 0
        self.reclaimed = 0

    def _checkpoints_for(self, spec: RunSpec) -> Optional[CheckpointStore]:
        if not spec.warmup:
            return None
        # Disk-backed under the shared result store, so every worker (and
        # the sweep front end's pre-pass) shares one warm-up per design.
        return CheckpointStore(self.store.directory / "checkpoints")

    def _execute(self, task: Task) -> RunResult:
        checkpoints = self._checkpoints_for(task.spec)
        if self.timeout is not None:
            return execute_spec_isolated(
                task.spec, checkpoints, timeout=self.timeout
            )
        return execute_spec(task.spec, checkpoints)

    def run_task(self, task: Task) -> bool:
        """Execute one leased task end to end; True when it completed.

        The store is consulted first: a task whose result already exists
        (a previous owner was killed *after* the content-addressed write
        but *before* marking the task done) completes without simulating
        -- this is what guarantees zero duplicated simulations across
        crash/restart cycles.
        """
        heartbeat = _HeartbeatThread(
            self.queue, task, interval=self.queue.lease_seconds / 4.0
        )
        heartbeat.start()
        try:
            try:
                result = self.store.get(task.spec)
            except SimulationError:
                # A corrupt entry under this digest: re-simulate and let the
                # content-addressed put overwrite it with sound bytes,
                # instead of dead-lettering a perfectly runnable task.
                result = None
            if result is None:
                result = self._execute(task)
                if heartbeat.lease_lost.is_set():
                    # Someone else owns (or already re-ran) the task now.
                    # The content-addressed put below is still safe -- both
                    # writers produce identical bytes -- but the queue
                    # bookkeeping belongs to the new owner.
                    self.store.put(task.spec, result)
                    return False
                self.store.put(task.spec, result)
            self.queue.complete(task)
            self.completed += 1
            return True
        except SpecRunError as error:
            self.failed += 1
            self.queue.fail(task, f"{error.reason}: {error.detail}")
            return False
        except Exception:  # noqa: BLE001 - any failure becomes a retry
            self.failed += 1
            self.queue.fail(task, traceback.format_exc())
            return False
        finally:
            heartbeat.stop()

    def step(self) -> bool:
        """One poll cycle: reap expired leases, then run one task if any."""
        self.reclaimed += len(self.queue.reap())
        task = self.queue.claim(self.owner)
        if task is None:
            return False
        self.run_task(task)
        return True

    def run(self) -> Dict[str, object]:
        """Drain the queue until exhausted / idle-exit / max-tasks."""
        idle_since: Optional[float] = None
        while True:
            if (
                self.max_tasks is not None
                and self.completed + self.failed >= self.max_tasks
            ):
                break
            if self.step():
                idle_since = None
                continue
            now = time.monotonic()
            if self.idle_exit is not None:
                if idle_since is None:
                    idle_since = now
                elif now - idle_since >= self.idle_exit:
                    break
            time.sleep(self.poll_interval)
        return {
            "owner": self.owner,
            "completed": self.completed,
            "failed": self.failed,
            "reclaimed": self.reclaimed,
        }


class QueueExecutor:
    """Executor backend that runs a spec batch through a work queue.

    Drop-in for :class:`~repro.experiments.executor.SerialExecutor` inside
    :func:`~repro.experiments.executor.execute_specs`: ``run`` enqueues
    every spec, participates in draining the queue (claim -- execute --
    complete, exactly like an external worker), and polls until each spec
    is done or dead-lettered.  External ``venice-sim worker`` processes
    sharing the directory speed the batch up and are interchangeable with
    the in-process participant.

    Dead-lettered specs raise :class:`~repro.errors.ExecutionError` via
    ``run`` (after everything else finished); ``run_detailed`` reports
    them as failures, so sweeps degrade gracefully instead of hanging.
    """

    jobs = 1

    def __init__(
        self,
        queue: WorkQueue,
        *,
        owner: Optional[str] = None,
        participate: bool = True,
        poll_interval: float = 0.2,
        timeout: Optional[float] = None,
    ) -> None:
        self.queue = queue
        self.participate = participate
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.worker = QueueWorker(
            queue, owner=owner, timeout=timeout, poll_interval=poll_interval
        )
        self.runs_completed = 0

    def run_detailed(
        self,
        specs: Sequence[RunSpec],
        checkpoints: Optional[CheckpointStore] = None,
    ) -> Tuple[List[Optional[RunResult]], List[SpecRunError]]:
        """Enqueue-and-wait; failures are the batch's dead-lettered specs."""
        by_digest = {spec.digest: spec for spec in specs}
        self.queue.enqueue_specs(list(specs))
        while not self.queue.drained(list(by_digest)):
            if not self.worker.step() and not self.queue.drained(
                list(by_digest)
            ):
                # Nothing claimable right now (other workers hold leases,
                # or retries are backing off): wait a beat.
                time.sleep(self.poll_interval)
        store = self.worker.store
        dead = self.queue.dead_letters()
        results: List[Optional[RunResult]] = []
        failures: List[SpecRunError] = []
        completed = 0
        for spec in specs:
            if spec.digest in dead:
                letter = dead[spec.digest]
                errors = letter.get("errors") or ["(no captured error)"]
                failures.append(
                    SpecRunError(
                        spec.digest,
                        spec.label(),
                        "dead-letter",
                        f"gave up after {letter.get('attempts')} attempts; "
                        f"last error:\n{errors[-1]}",
                    )
                )
                results.append(None)
                continue
            result = store.get(spec)
            if result is None:
                raise QueueError(
                    f"task {spec.digest[:12]} is marked done but its result "
                    f"is missing from {store.directory}; run "
                    "`venice-sim store verify --repair` and re-run the sweep"
                )
            results.append(result)
            completed += 1
        self.runs_completed += completed
        return results, failures

    def run(
        self,
        specs: Sequence[RunSpec],
        checkpoints: Optional[CheckpointStore] = None,
    ) -> List[RunResult]:
        from repro.errors import ExecutionError

        results, failures = self.run_detailed(specs, checkpoints)
        if failures:
            raise ExecutionError(failures)
        return results
