"""Failure-sweep experiments: degradation curves under injected link faults.

The sweep asks the question the paper argues but never measures: *how do the
five fabrics degrade as links fail?*  For each failed-link count ``k`` it
builds one deterministic, **non-partitioning** fault set (every chip stays
reachable, so a fabric that stalls does so because of its routing, not
because the job was impossible), applies the same set to every design, and
charts throughput / p99 / completion against ``k``.

Everything is spec-driven: each (design, k) cell is one
:class:`~repro.experiments.spec.RunSpec` whose digest covers the fault
schedule, so sweeps deduplicate, parallelise, and cache-replay exactly like
the paper figures (a warm store re-run performs zero simulations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError
from repro.experiments.executor import execute_specs
from repro.experiments.spec import (
    ExperimentScale,
    RunSpec,
    build_config,
    matrix_specs,
)
from repro.interconnect.topology import Coord, MeshTopology, edge_key
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule
from repro.sim.rng import DeterministicRng

#: The five fabrics under test: every design with a real communication
#: substrate (the ideal SSD has no wires to fail).
SWEEP_DESIGNS = (
    DesignKind.BASELINE,
    DesignKind.PSSD,
    DesignKind.PNSSD,
    DesignKind.NOSSD,
    DesignKind.VENICE,
)

#: Default failed-link counts of the degradation curve.
DEFAULT_LINK_COUNTS = (0, 1, 2, 4, 8)

Edge = Tuple[Coord, Coord]


def _connected(topology: MeshTopology, dead) -> bool:
    """True when the mesh minus ``dead`` edges is still one component."""
    start = (0, 0)
    frontier = [start]
    seen = {start}
    while frontier:
        node = frontier.pop()
        for _, neighbor in topology.neighbors(node):
            if neighbor in seen or edge_key(node, neighbor) in dead:
                continue
            seen.add(neighbor)
            frontier.append(neighbor)
    return len(seen) == topology.node_count


def degradation_links(
    rows: int, cols: int, count: int, seed: int = 42
) -> List[Edge]:
    """Deterministically sample ``count`` distinct non-partitioning links.

    Links are drawn from a seeded shuffle of all mesh edges and accepted
    greedily only if the mesh stays connected with every accepted link
    removed -- so the returned set never partitions any chip, whatever the
    fabric.  Same ``(rows, cols, count, seed)`` always returns the same
    links (the sweep is cache-replayable).  Raises
    :class:`~repro.errors.ConfigurationError` when ``count`` exceeds the
    mesh's spanning-tree slack (``edges - nodes + 1``).
    """
    if count < 0:
        raise ConfigurationError(f"link count must be >= 0, got {count}")
    topology = MeshTopology(rows, cols)
    slack = topology.edge_count - topology.node_count + 1
    if count > slack:
        raise ConfigurationError(
            f"cannot fail {count} links of a {rows}x{cols} mesh without "
            f"partitioning it (at most {slack})"
        )
    edges: List[Edge] = [tuple(sorted(edge)) for edge in topology.edges()]
    edges.sort()  # canonical base order before the seeded shuffle
    rng = DeterministicRng(seed, stream="fault-links")
    rng.shuffle(edges)
    chosen: List[Edge] = []
    dead = set()
    for edge in edges:
        if len(chosen) == count:
            break
        key = edge_key(*edge)
        dead.add(key)
        if _connected(topology, dead):
            chosen.append(edge)
        else:
            dead.discard(key)
    if len(chosen) < count:  # pragma: no cover - slack check prevents this
        raise ConfigurationError(
            f"could only fail {len(chosen)} of {count} links without a partition"
        )
    return chosen


def link_fault_schedule(links: Sequence[Edge], at_ns: int = 0) -> FaultSchedule:
    """A schedule failing every link in ``links`` at ``at_ns`` (no repair)."""
    return FaultSchedule(
        [
            FaultEvent(at_ns, FaultKind.LINK_DOWN, link=(tuple(a), tuple(b)))
            for a, b in links
        ]
    )


def _sweep_plan(
    preset: str,
    workload: str,
    scale: ExperimentScale,
    link_counts: Sequence[int],
    designs: Sequence[DesignKind],
    seed: int,
    mix: bool,
) -> Tuple[str, Dict[int, Tuple[List[Edge], Tuple[RunSpec, ...]]]]:
    """Sample each count's link set exactly once and pair it with its specs."""
    config = build_config(preset, scale)
    rows, cols = config.mesh_rows, config.mesh_cols
    plan: Dict[int, Tuple[List[Edge], Tuple[RunSpec, ...]]] = {}
    for count in dict.fromkeys(int(k) for k in link_counts):
        links = degradation_links(rows, cols, count, seed)
        schedule = link_fault_schedule(links)
        specs = matrix_specs(
            preset,
            (workload,),
            scale,
            designs,
            mix=mix,
            faults=schedule.to_spec() or None,
        )
        plan[count] = (links, specs)
    return f"{rows}x{cols}", plan


def sweep_specs(
    preset: str,
    workload: str,
    scale: ExperimentScale,
    link_counts: Sequence[int] = DEFAULT_LINK_COUNTS,
    designs: Sequence[DesignKind] = SWEEP_DESIGNS,
    seed: int = 42,
    *,
    mix: bool = False,
) -> Dict[int, Tuple[RunSpec, ...]]:
    """The spec matrix of one degradation sweep: ``{k: specs-at-k-links}``.

    Every design at a given ``k`` sees the *same* fault set (drawn by
    :func:`degradation_links`), and the ``k`` sets are nested by
    construction (the sample for ``k`` is a prefix-extension of the sample
    for smaller ``k``), so the curve measures added failures, not different
    failure geography.
    """
    _, plan = _sweep_plan(preset, workload, scale, link_counts, designs, seed, mix)
    return {count: specs for count, (_, specs) in plan.items()}


def run_faults_sweep(
    preset: str = "performance-optimized",
    workload: str = "hm_0",
    scale: Optional[ExperimentScale] = None,
    link_counts: Sequence[int] = DEFAULT_LINK_COUNTS,
    designs: Sequence[DesignKind] = SWEEP_DESIGNS,
    seed: int = 42,
    *,
    mix: bool = False,
    executor=None,
    store=None,
) -> Dict[str, object]:
    """Execute a degradation sweep and reduce it to the curve payload.

    Returns ``{"curve": {k: {design: cell}}, "links": {k: [...]}, ...}``
    where each cell carries ``iops``, ``p99_latency_ns``,
    ``mean_latency_ns``, ``completed``, ``completed_fraction``,
    ``conflict_fraction``, and ``stalled`` (requests that never finished
    because the design could not route around the fault set).  Execution
    goes through :func:`~repro.experiments.executor.execute_specs`, so
    ``--jobs``/``--cache`` semantics match the paper figures.
    """
    scale = scale or ExperimentScale()
    mesh, plan = _sweep_plan(
        preset, workload, scale, link_counts, designs, seed, mix
    )
    all_specs = [spec for _, specs in plan.values() for spec in specs]
    results = execute_specs(all_specs, executor=executor, store=store)
    curve: Dict[int, Dict[str, Dict[str, float]]] = {}
    for count, (_, specs) in plan.items():
        cells: Dict[str, Dict[str, float]] = {}
        for spec in specs:
            result = results[spec]
            total = max(1, result.requests_completed + int(
                result.extra.get("requests_stalled", 0.0)
            ))
            cells[spec.design] = {
                "iops": result.iops,
                "p99_latency_ns": result.p99_latency_ns,
                "mean_latency_ns": result.mean_latency_ns,
                "completed": float(result.requests_completed),
                "completed_fraction": result.requests_completed / total,
                "conflict_fraction": result.conflict_fraction,
                "stalled": result.extra.get("requests_stalled", 0.0),
            }
        curve[count] = cells
    return {
        "experiment": "faults-sweep",
        "preset": preset,
        "workload": workload,
        "mesh": mesh,
        "seed": seed,
        "designs": [design.value for design in designs],
        "link_counts": sorted(plan),
        "links": {
            count: [[list(a), list(b)] for a, b in links]
            for count, (links, _) in plan.items()
        },
        "curve": curve,
    }
