"""Core performance micro-benchmarks and the ``venice-sim bench`` payload.

Three layers, each isolating one slice of the simulator's hot path:

* **engine** -- raw event throughput of the discrete-event loop (timer
  ping-pong across a handful of processes: heap pushes/pops, micro-queue
  hits, generator resumes),
* **resources** -- uncontended acquire/release cycles plus a contended
  FIFO handoff mix (the Grant fast path and the event slow path),
* **end-to-end** -- requests/sec of a small-but-real trace replay per
  design (the figure-generation workload in miniature).

``run_bench`` executes all of them serially in-process and returns a plain
JSON-able payload (``BENCH_core.json``); ``check_regression`` compares a
payload against a stored baseline so CI can fail on >20% throughput loss.
Timings use ``time.perf_counter`` around the simulation only -- config,
trace generation, and device construction are excluded.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.config.ssd_config import DesignKind
from repro.experiments.spec import ExperimentScale, make_spec
from repro.sim.engine import AllOf, Engine
from repro.sim.resources import Resource

BENCH_SCHEMA_VERSION = 2

#: Designs measured end-to-end.  Baseline and Venice bracket the cost
#: spectrum (simple shared bus vs full mesh reservation walk).
BENCH_DESIGNS = ("baseline", "nossd", "venice")

_QUICK = {"engine_events": 120_000, "resource_cycles": 60_000, "requests": 220}
_FULL = {"engine_events": 400_000, "resource_cycles": 200_000, "requests": 500}


def _best_of(repeats: int, runner: Callable[[], Tuple[float, float]]) -> Tuple[float, float]:
    """Run ``runner`` ``repeats`` times, return the (ops, seconds) of the
    fastest run (least-interference estimate for throughput claims)."""
    best: Optional[Tuple[float, float]] = None
    for _ in range(repeats):
        ops, elapsed = runner()
        if best is None or ops / elapsed > best[0] / best[1]:
            best = (ops, elapsed)
    assert best is not None
    return best


def bench_engine_events(events: int = 400_000, repeats: int = 3) -> Dict[str, float]:
    """Raw event-loop throughput: N timer processes plus zero-delay churn."""

    def run() -> Tuple[float, float]:
        engine = Engine()

        def ticker(count: int):
            for tick in range(count):
                # 3:1 mix of heap timers and micro-queue (delay 0) resumes,
                # approximating the simulator's observed schedule mix.
                yield 1 if tick & 3 else 0

        for _ in range(4):
            engine.process(ticker(events // 4))
        start = time.perf_counter()
        engine.run()
        return float(engine.processed_events), time.perf_counter() - start

    ops, elapsed = _best_of(repeats, run)
    return {"events": ops, "seconds": elapsed, "events_per_sec": ops / elapsed}


def bench_resource_cycles(cycles: int = 200_000, repeats: int = 3) -> Dict[str, float]:
    """Acquire/release throughput: uncontended fast path + FIFO handoff."""

    def run() -> Tuple[float, float]:
        engine = Engine()
        solo = Resource(engine, "solo")
        shared = Resource(engine, "shared")

        def uncontended(count: int):
            for _ in range(count):
                lease = yield solo.acquire()
                lease.release()
                yield 1

        def contended(count: int):
            for _ in range(count):
                lease = yield shared.acquire()
                yield 1
                lease.release()

        half = cycles // 2
        engine.process(uncontended(half))
        engine.process(contended(half // 2))
        engine.process(contended(half // 2))
        start = time.perf_counter()
        engine.run()
        return float(cycles), time.perf_counter() - start

    ops, elapsed = _best_of(repeats, run)
    return {"cycles": ops, "seconds": elapsed, "cycles_per_sec": ops / elapsed}


def bench_fanout(processes: int = 20_000, repeats: int = 3) -> Dict[str, float]:
    """Process spawn + AllOf join throughput (the per-request fan-out)."""

    def run() -> Tuple[float, float]:
        engine = Engine()

        def leaf():
            yield 1

        def parent(count: int):
            for _ in range(count // 4):
                yield AllOf([engine.process(leaf()) for _ in range(3)])

        engine.process(parent(processes))
        start = time.perf_counter()
        engine.run()
        return float(processes), time.perf_counter() - start

    ops, elapsed = _best_of(repeats, run)
    return {"processes": ops, "seconds": elapsed, "processes_per_sec": ops / elapsed}


def bench_end_to_end(
    design: str, requests: int = 500, repeats: int = 2
) -> Dict[str, float]:
    """Requests/sec of a miniature hm_0 replay on one design.

    Only :meth:`SsdDevice.run_trace` is timed; config building, trace
    synthesis, and device construction are excluded.
    """
    scale = ExperimentScale(
        requests=requests,
        requests_per_mix_constituent=max(50, requests // 3),
        blocks_per_plane=16,
        pages_per_block=16,
    )
    spec = make_spec(DesignKind.from_name(design), "performance-optimized", "hm_0", scale)
    config = spec.build_config()
    trace = spec.build_trace(config)

    def run() -> Tuple[float, float]:
        from repro.ssd.device import SsdDevice

        device = SsdDevice(config, spec.design_kind, queue_pairs=scale.queue_pairs)
        start = time.perf_counter()
        result = device.run_trace(trace.requests, trace.name)
        elapsed = time.perf_counter() - start
        return float(result.requests_completed), elapsed

    ops, elapsed = _best_of(repeats, run)
    return {
        "requests": ops,
        "seconds": elapsed,
        "requests_per_sec": ops / elapsed,
    }


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        rss //= 1024
    return int(rss)


def run_bench(quick: bool = False, repeats: Optional[int] = None) -> Dict[str, object]:
    """Run the full micro-benchmark suite; returns the BENCH_core payload."""
    sizes = _QUICK if quick else _FULL
    reps = repeats if repeats is not None else (2 if quick else 3)
    engine = bench_engine_events(sizes["engine_events"], repeats=reps)
    resources = bench_resource_cycles(sizes["resource_cycles"], repeats=reps)
    fanout = bench_fanout(repeats=reps)
    designs = {
        design: bench_end_to_end(design, sizes["requests"], repeats=max(2, reps - 1))
        for design in BENCH_DESIGNS
    }
    total_requests = sum(d["requests"] for d in designs.values())
    total_seconds = sum(d["seconds"] for d in designs.values())
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "engine": engine,
        "resources": resources,
        "fanout": fanout,
        "end_to_end": designs,
        "events_per_sec": engine["events_per_sec"],
        "requests_per_sec": total_requests / total_seconds,
        "peak_rss_kb": peak_rss_kb(),
    }


def check_regression(
    payload: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.20,
) -> List[str]:
    """Compare a bench payload against a baseline payload.

    Returns a list of human-readable failures for every headline metric
    that regressed by more than ``tolerance`` (fractional).  Metrics absent
    from the baseline are skipped, so baselines stay forward-compatible.
    """
    failures: List[str] = []
    for metric in ("events_per_sec", "requests_per_sec"):
        reference = baseline.get(metric)
        if not isinstance(reference, (int, float)) or reference <= 0:
            continue
        measured = payload.get(metric)
        if not isinstance(measured, (int, float)):
            failures.append(f"{metric}: missing from bench payload")
            continue
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{metric}: {measured:,.0f} < {floor:,.0f} "
                f"(baseline {reference:,.0f} - {tolerance:.0%})"
            )
    return failures
