"""Core performance micro-benchmarks and the ``venice-sim bench`` payload.

Three layers, each isolating one slice of the simulator's hot path:

* **engine** -- raw event throughput of the discrete-event loop (timer
  ping-pong across a handful of processes: heap pushes/pops, micro-queue
  hits, generator resumes),
* **resources** -- uncontended acquire/release cycles plus a contended
  FIFO handoff mix (the Grant fast path and the event slow path),
* **end-to-end** -- requests/sec of a small-but-real trace replay per
  design (the figure-generation workload in miniature).

``run_bench`` executes all of them serially in-process and returns a plain
JSON-able payload (``BENCH_core.json``); ``check_regression`` compares a
payload against a stored baseline so CI can fail on >20% throughput loss.
Timings use ``time.perf_counter`` around the simulation only -- config,
trace generation, and device construction are excluded.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.config.ssd_config import DesignKind
from repro.experiments.spec import ExperimentScale, make_spec
from repro.sim.engine import AllOf, Engine
from repro.sim.resources import Resource

BENCH_SCHEMA_VERSION = 2

#: The sweep-speedup recipe (``venice-sim bench --speedup``).  The sweep is
#: the fig9a/10/13/14 matrix -- fig9a and fig10 share one 6-design spec
#: set, fig13 and fig14 the 5-fabric subset -- at a sub-saturation scale
#: where a steady state exists for the early-stop monitor to detect (the
#: default figure scale deliberately overloads the device, where latency
#: has no steady state and the monitor correctly never fires).
SPEEDUP_SCALE = ExperimentScale(
    requests=1000,
    requests_per_mix_constituent=340,
    blocks_per_plane=16,
    pages_per_block=16,
    target_pressure=0.05,
)
SPEEDUP_WARMUP = "fill 0.8; steps 2000"
SPEEDUP_EARLY_STOP = "window 60; tolerance 0.03; patience 2; min 240"

#: Designs measured end-to-end.  Baseline and Venice bracket the cost
#: spectrum (simple shared bus vs full mesh reservation walk).
BENCH_DESIGNS = ("baseline", "nossd", "venice")

_QUICK = {"engine_events": 120_000, "resource_cycles": 60_000, "requests": 220}
_FULL = {"engine_events": 400_000, "resource_cycles": 200_000, "requests": 500}


def _best_of(repeats: int, runner: Callable[[], Tuple[float, float]]) -> Tuple[float, float]:
    """Run ``runner`` ``repeats`` times, return the (ops, seconds) of the
    fastest run (least-interference estimate for throughput claims)."""
    best: Optional[Tuple[float, float]] = None
    for _ in range(repeats):
        ops, elapsed = runner()
        if best is None or ops / elapsed > best[0] / best[1]:
            best = (ops, elapsed)
    assert best is not None
    return best


def bench_engine_events(events: int = 400_000, repeats: int = 3) -> Dict[str, float]:
    """Raw event-loop throughput: N timer processes plus zero-delay churn."""

    def run() -> Tuple[float, float]:
        engine = Engine()

        def ticker(count: int):
            for tick in range(count):
                # 3:1 mix of heap timers and micro-queue (delay 0) resumes,
                # approximating the simulator's observed schedule mix.
                yield 1 if tick & 3 else 0

        for _ in range(4):
            engine.process(ticker(events // 4))
        start = time.perf_counter()
        engine.run()
        return float(engine.processed_events), time.perf_counter() - start

    ops, elapsed = _best_of(repeats, run)
    return {"events": ops, "seconds": elapsed, "events_per_sec": ops / elapsed}


def bench_resource_cycles(cycles: int = 200_000, repeats: int = 3) -> Dict[str, float]:
    """Acquire/release throughput: uncontended fast path + FIFO handoff."""

    def run() -> Tuple[float, float]:
        engine = Engine()
        solo = Resource(engine, "solo")
        shared = Resource(engine, "shared")

        def uncontended(count: int):
            for _ in range(count):
                lease = yield solo.acquire()
                lease.release()
                yield 1

        def contended(count: int):
            for _ in range(count):
                lease = yield shared.acquire()
                yield 1
                lease.release()

        half = cycles // 2
        engine.process(uncontended(half))
        engine.process(contended(half // 2))
        engine.process(contended(half // 2))
        start = time.perf_counter()
        engine.run()
        return float(cycles), time.perf_counter() - start

    ops, elapsed = _best_of(repeats, run)
    return {"cycles": ops, "seconds": elapsed, "cycles_per_sec": ops / elapsed}


def bench_fanout(processes: int = 20_000, repeats: int = 3) -> Dict[str, float]:
    """Process spawn + AllOf join throughput (the per-request fan-out)."""

    def run() -> Tuple[float, float]:
        engine = Engine()

        def leaf():
            yield 1

        def parent(count: int):
            for _ in range(count // 4):
                yield AllOf([engine.process(leaf()) for _ in range(3)])

        engine.process(parent(processes))
        start = time.perf_counter()
        engine.run()
        return float(processes), time.perf_counter() - start

    ops, elapsed = _best_of(repeats, run)
    return {"processes": ops, "seconds": elapsed, "processes_per_sec": ops / elapsed}


def bench_end_to_end(
    design: str, requests: int = 500, repeats: int = 2
) -> Dict[str, float]:
    """Requests/sec of a miniature hm_0 replay on one design.

    Only :meth:`SsdDevice.run_trace` is timed; config building, trace
    synthesis, and device construction are excluded.
    """
    scale = ExperimentScale(
        requests=requests,
        requests_per_mix_constituent=max(50, requests // 3),
        blocks_per_plane=16,
        pages_per_block=16,
    )
    spec = make_spec(DesignKind.from_name(design), "performance-optimized", "hm_0", scale)
    config = spec.build_config()
    trace = spec.build_trace(config)

    def run() -> Tuple[float, float]:
        from repro.ssd.device import SsdDevice

        device = SsdDevice(config, spec.design_kind, queue_pairs=scale.queue_pairs)
        start = time.perf_counter()
        result = device.run_trace(trace.requests, trace.name)
        elapsed = time.perf_counter() - start
        return float(result.requests_completed), elapsed

    ops, elapsed = _best_of(repeats, run)
    return {
        "requests": ops,
        "seconds": elapsed,
        "requests_per_sec": ops / elapsed,
    }


def bench_sweep_speedup(
    quick: bool = False,
    scale: Optional[ExperimentScale] = None,
    warmup: str = SPEEDUP_WARMUP,
    early_stop: str = SPEEDUP_EARLY_STOP,
) -> Dict[str, object]:
    """Simulated-event cost of the fig9a/10/13/14 sweep, exact vs optimized.

    The *exact* arm replays the four-figure pipeline the way it runs
    without any caching: each figure deduplicates its own spec set, but
    figures re-simulate the cells they share (fig10 repeats fig9a's
    matrix; fig14 repeats fig13's).  The *optimized* arm runs the union
    of the same cells once -- cross-figure dedup via the result-store
    identity, one checkpointed warm-up per design shared by every cell,
    and steady-state early-stop on each measured phase.  Both arms count
    every simulated event, warm-ups included, so the ratio is the honest
    end-to-end cost reduction of the sweep pipeline.
    """
    from repro.experiments.figures import _CONFLICT_DESIGNS, DEFAULT_WORKLOADS
    from repro.experiments.spec import ALL_DESIGNS, matrix_specs
    from repro.sim.checkpoint import CheckpointStore

    scale = scale or SPEEDUP_SCALE
    workloads = DEFAULT_WORKLOADS[:3] if quick else DEFAULT_WORKLOADS
    preset = "performance-optimized"
    full_matrix = matrix_specs(preset, workloads, scale, ALL_DESIGNS)
    fabric_matrix = matrix_specs(preset, workloads, scale, _CONFLICT_DESIGNS)
    # fig9a, fig10, fig13, fig14 in pipeline order.
    figure_specs = (full_matrix, full_matrix, fabric_matrix, fabric_matrix)

    start = time.perf_counter()
    exact_events = 0
    exact_cells = 0
    per_cell: Dict[object, int] = {}
    for specs in figure_specs:
        for spec in dict.fromkeys(specs):
            if spec not in per_cell:
                _, info = spec.execute_instrumented()
                per_cell[spec] = int(info["events"])
            # The exact pipeline re-simulates cells shared across figures;
            # determinism lets us count the repeat without re-running it.
            exact_events += per_cell[spec]
            exact_cells += 1
    exact_seconds = time.perf_counter() - start

    start = time.perf_counter()
    checkpoints = CheckpointStore()
    unique = list(dict.fromkeys(full_matrix + fabric_matrix))
    measured_events = 0
    warmup_events = 0
    early_stopped_cells = 0
    for spec in unique:
        twin = replace(spec, warmup=warmup, early_stop=early_stop)
        _, info = twin.execute_instrumented(checkpoints)
        measured_events += int(info["events"])
        warmup_events += int(info.get("warmup_events", 0))
        early_stopped_cells += bool(info.get("early_stopped"))
    optimized_events = measured_events + warmup_events
    optimized_seconds = time.perf_counter() - start

    return {
        "figures": ["fig9a", "fig10", "fig13", "fig14"],
        "workloads": list(workloads),
        "warmup": warmup,
        "early_stop": early_stop,
        "requests": scale.requests,
        "target_pressure": scale.target_pressure,
        "exact_cells": exact_cells,
        "optimized_cells": len(unique),
        "exact_events": exact_events,
        "optimized_events": optimized_events,
        "optimized_measured_events": measured_events,
        "optimized_warmup_events": warmup_events,
        "warmups_computed": len(checkpoints),
        "early_stopped_cells": early_stopped_cells,
        "event_speedup": (
            exact_events / optimized_events if optimized_events else 0.0
        ),
        "exact_seconds": exact_seconds,
        "optimized_seconds": optimized_seconds,
    }


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        rss //= 1024
    return int(rss)


def run_bench(
    quick: bool = False,
    repeats: Optional[int] = None,
    speedup: bool = False,
) -> Dict[str, object]:
    """Run the full micro-benchmark suite; returns the BENCH_core payload.

    ``speedup=True`` additionally runs :func:`bench_sweep_speedup` and
    records it under ``"sweep_speedup"``.  The speedup ratio is reported,
    not regression-gated: it is deterministic within one tree but moves
    whenever warm-up/early-stop tuning changes, which is expected.
    """
    sizes = _QUICK if quick else _FULL
    reps = repeats if repeats is not None else (2 if quick else 3)
    engine = bench_engine_events(sizes["engine_events"], repeats=reps)
    resources = bench_resource_cycles(sizes["resource_cycles"], repeats=reps)
    fanout = bench_fanout(repeats=reps)
    designs = {
        design: bench_end_to_end(design, sizes["requests"], repeats=max(2, reps - 1))
        for design in BENCH_DESIGNS
    }
    total_requests = sum(d["requests"] for d in designs.values())
    total_seconds = sum(d["seconds"] for d in designs.values())
    payload: Dict[str, object] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "engine": engine,
        "resources": resources,
        "fanout": fanout,
        "end_to_end": designs,
        "events_per_sec": engine["events_per_sec"],
        "requests_per_sec": total_requests / total_seconds,
        "peak_rss_kb": peak_rss_kb(),
    }
    if speedup:
        payload["sweep_speedup"] = bench_sweep_speedup(quick=quick)
    return payload


def check_regression(
    payload: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.20,
) -> List[str]:
    """Compare a bench payload against a baseline payload.

    Returns a list of human-readable failures for every headline metric
    that regressed by more than ``tolerance`` (fractional).  Metrics absent
    from the baseline are skipped, so baselines stay forward-compatible.
    """
    failures: List[str] = []
    for metric in ("events_per_sec", "requests_per_sec"):
        reference = baseline.get(metric)
        if not isinstance(reference, (int, float)) or reference <= 0:
            continue
        measured = payload.get(metric)
        if not isinstance(measured, (int, float)):
            failures.append(f"{metric}: missing from bench payload")
            continue
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{metric}: {measured:,.0f} < {floor:,.0f} "
                f"(baseline {reference:,.0f} - {tolerance:.0%})"
            )
    return failures
