"""Mesh-wide reservation state and the scout walk.

:class:`VeniceNetwork` owns the ground truth the routers' distributed state
represents: which bidirectional links and which chip ejection ports are held
by which circuit.  :meth:`VeniceNetwork.try_reserve` performs one complete
scout traversal -- Algorithm 1 at every router, link reservation on forward
moves, cancel-mode backtracking, livelock caps -- atomically against the
current state.  This atomicity is faithful because scout packets are two
8-bit flits travelling at nanosecond scale while the circuits they reserve
live for microseconds (see DESIGN.md §3).

One structural rule follows from Figure 7: the router reservation table has
*one row per packet ID*, so a committed circuit can cross each router at
most once.  The walk therefore never extends the path onto a router that
already holds this scout's entry; re-visiting a router is only possible
after backtracking cleared its entry (which is also exactly when the paper
allows a revisit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import ReservationError, RoutingError
from repro.interconnect.topology import (
    MESH_DIRECTIONS,
    Coord,
    Direction,
    MeshTopology,
    edge_key,
)
from repro.venice.router import Router
from repro.venice.routing import (
    MAX_ROUTER_VISITS,
    MINIMAL_DIRECTIONS_BY_SIGN as _MINIMAL_BY_SIGN,
)
from repro.venice.scout import FlitMode, ScoutPacket


@dataclass
class ReservedCircuit:
    """A conflict-free bidirectional circuit from an FC to a flash chip."""

    circuit_id: int  # unique per live circuit (keys router table rows)
    packet_id: int  # scout packet id == source FC id (Figure 6 encoding)
    fc_index: int
    destination: Coord
    nodes: List[Coord]  # router sequence, FC attach point first
    edges: List[FrozenSet[Coord]]  # mesh links held by the circuit
    minimal_hops: int  # Manhattan distance (non-minimality accounting)

    @property
    def mesh_hops(self) -> int:
        return len(self.edges)

    @property
    def total_hops(self) -> int:
        """Injection link + mesh links + ejection link (Equation 1 distance)."""
        return len(self.edges) + 2

    @property
    def is_minimal(self) -> bool:
        return len(self.edges) == self.minimal_hops


@dataclass
class ScoutResult:
    """Outcome of one scout traversal."""

    circuit: Optional[ReservedCircuit]
    forward_moves: int  # links the scout traversed going forward
    backtracks: int
    failure_reason: Optional[str] = None  # "chip-busy" | "path" | None

    @property
    def succeeded(self) -> bool:
        return self.circuit is not None

    @property
    def failed_on_chip(self) -> bool:
        """The destination chip's own interface was occupied.

        The paper's ideal SSD distinguishes exactly this: a request "does
        not experience path conflicts ... but it can still be delayed if the
        target flash chip is busy" (§3.3).  Chip busyness is therefore not a
        path conflict for Venice either.
        """
        return self.failure_reason == "chip-busy"

    @property
    def scout_hops(self) -> int:
        """Total link traversals of the scout (forward + backtrack legs)."""
        return self.forward_moves + self.backtracks


@dataclass
class _WalkFrame:
    """One forward move on the backtracking stack."""

    node: Coord
    entry_port: Optional[Direction]  # scout's input port when it was at node
    exit_port: Direction
    edge: FrozenSet[Coord]


class VeniceNetwork:
    """Reservation ground truth for a ``rows x cols`` Venice mesh.

    ``max_misroutes`` bounds how many *non-minimal* forward moves one scout
    may take.  The paper itself flags the cost of non-minimal paths ("a
    non-minimal path occupies more links ... Venice attempts to find
    path-conflict-free minimal paths as much as possible", §4.3); an
    unbounded misroute budget lets saturated meshes degenerate into long
    link-hogging circuits that destroy concurrency.  The bound is an
    explicit policy knob (ablated in benchmarks/bench_ablation.py).
    ``max_scout_steps`` caps the total walk length as a simulation-cost
    guard; a scout that long is failing anyway and the FC would re-send it.
    """

    #: Column stride of the flash controllers' injection drops.  Venice
    #: reuses the former shared channel's multi-drop PCB routes as
    #: point-to-point injection links (the paper's §6.6 area analysis counts
    #: injection/ejection links as "the same as flash chips' connectors to
    #: the shared channel bus"), so each controller taps into its row at
    #: every second router rather than only at the west edge.  Without this
    #: the eight column-0 links form an 8 GB/s min-cut below the baseline's
    #: aggregate channel bandwidth and none of the paper's gains are
    #: reachable -- see DESIGN.md.
    INJECTION_STRIDE = 1

    def __init__(
        self,
        rows: int,
        cols: int,
        fc_count: int,
        lfsr_seed: int = 1,
        max_misroutes: int = 2,
        max_scout_steps: int = 256,
    ) -> None:
        self.max_misroutes = max_misroutes
        self.max_scout_steps = max_scout_steps
        self.topology = MeshTopology(rows, cols)
        self.fc_count = fc_count
        self.injection_cols = tuple(range(0, cols, self.INJECTION_STRIDE))
        self.routers: Dict[Coord, Router] = {}
        for row in range(rows):
            for col in range(cols):
                # Seed each router's LFSR differently so ties do not resolve
                # identically across the whole mesh.
                seed = (lfsr_seed + row * cols + col) % 3 + 1
                self.routers[(row, col)] = Router((row, col), fc_count, seed)
        self.link_owner: Dict[FrozenSet[Coord], int] = {}
        self.ejection_owner: Dict[Coord, int] = {}
        self.injection_owner: Dict[Coord, int] = {}  # occupied FC drop points
        self.circuits: Dict[int, ReservedCircuit] = {}
        # Fault masks (mutated through venice.degraded.DegradedVenice): a
        # dead link/router is excluded from usable() exactly like a busy
        # one, which is what lets Algorithm 1's existing backtracking route
        # around permanent failures.  Both sets are empty on a pristine
        # mesh, so every membership test below degenerates to a cheap miss.
        self._dead_links: Set[FrozenSet[Coord]] = set()
        self._dead_routers: Set[Coord] = set()
        self._degraded = None  # lazy DegradedVenice (see degraded_mode())
        # Hot-path lookup tables: per-node neighbour coordinate and
        # canonical edge key, indexed by Direction.value (RIGHT/UP/DOWN/
        # LEFT), so the scout walk never allocates a frozenset or re-derives
        # a coordinate.  Router reservation tables are aliased flat for the
        # same reason.
        self._neighbors: Dict[Coord, tuple] = {}
        self._edges: Dict[Coord, tuple] = {}
        for node in self.routers:
            nearby = []
            edges = []
            for direction in MESH_DIRECTIONS:
                other = self.topology.neighbor(node, direction)
                nearby.append(other)
                edges.append(None if other is None else edge_key(node, other))
            self._neighbors[node] = tuple(nearby)
            self._edges[node] = tuple(edges)
        self._tables = {node: router.table for node, router in self.routers.items()}
        self._table_capacity = fc_count  # every router table has fc_count rows
        self._injection_rows = tuple(
            tuple((fc % rows, col) for col in self.injection_cols)
            for fc in range(fc_count)
        )
        # accounting
        self.reservations = 0
        self.failed_reservations = 0
        self.non_minimal_circuits = 0
        self.total_scout_hops = 0
        self._next_circuit_id = 0

    # ------------------------------------------------------------------ #
    # link state queries
    # ------------------------------------------------------------------ #

    def link_free(self, a: Coord, b: Coord) -> bool:
        return edge_key(a, b) not in self.link_owner

    def ejection_free(self, node: Coord) -> bool:
        return node not in self.ejection_owner

    def injection_free(self, node: Coord) -> bool:
        return node not in self.injection_owner

    def injection_points(self, fc_index: int) -> List[Coord]:
        """Drop points of a controller, nearest row first."""
        return list(self._injection_rows[fc_index])

    def degraded_mode(self):
        """The fault-state controller for this mesh (created on first use).

        Returns a :class:`~repro.venice.degraded.DegradedVenice`; imported
        lazily to keep the pristine-mesh hot path free of the module.
        """
        if self._degraded is None:
            from repro.venice.degraded import DegradedVenice

            self._degraded = DegradedVenice(self)
        return self._degraded

    def is_partitioned(self, destination: Coord) -> bool:
        """True when faults cut ``destination`` off from every injection drop.

        Always ``False`` on a pristine mesh (checked without building the
        degraded-mode state); otherwise delegates to the per-epoch
        reachability oracle in :mod:`repro.venice.degraded`.
        """
        if not self._dead_links and not self._dead_routers:
            return False
        return self.degraded_mode().is_partitioned(destination)

    def best_injection(self, fc_index: int, destination: Coord) -> Optional[Coord]:
        """Free drop point closest to the destination (any drop if all busy).

        Under faults, drop points whose router is dead -- or that faults
        have cut into a different alive component than the destination (a
        guaranteed dead end for the walk, however near its coordinates) --
        are unusable; ``None`` means this controller has no usable drop for
        this destination.
        """
        points = self._injection_rows[fc_index]
        if self._dead_routers or self._dead_links:
            degraded = self.degraded_mode()
            points = tuple(
                point
                for point in points
                if degraded.same_component(point, destination)
            )
            if not points:
                return None
        dest_row, dest_col = destination
        occupied = self.injection_owner
        best = None
        best_distance = 1 << 30
        for point in points:
            if point not in occupied:
                distance = abs(point[0] - dest_row) + abs(point[1] - dest_col)
                if distance < best_distance:
                    best_distance = distance
                    best = point
        if best is not None:
            return best
        for point in points:
            distance = abs(point[0] - dest_row) + abs(point[1] - dest_col)
            if distance < best_distance:
                best_distance = distance
                best = point
        return best

    def links_in_use(self) -> int:
        return len(self.link_owner)

    # ------------------------------------------------------------------ #
    # scout traversal (Algorithm 1 + backtracking + livelock caps)
    # ------------------------------------------------------------------ #

    def try_reserve(self, packet: ScoutPacket, destination: Coord) -> ScoutResult:
        """Send one reserve-mode scout; atomically reserve a circuit or fail.

        Scouts are serialised per FC by the fabric (one packet id in flight
        per controller, §4.2); the *circuits* they establish are keyed by a
        unique circuit id so one controller can hold several live circuits
        at once -- see DESIGN.md on why the published throughput requires
        multi-circuit controllers and how the router reservation table's row
        capacity becomes the per-router constraint.
        """
        if packet.mode is not FlitMode.RESERVE:
            raise ReservationError("scout must be sent in reserve mode")
        if not self.topology.contains(destination):
            raise RoutingError(f"destination {destination} outside mesh")
        if self._dead_routers and destination in self._dead_routers:
            # The destination's own router is dead: no path can terminate
            # here until it is repaired (a true partition for this chip).
            self.failed_reservations += 1
            return ScoutResult(None, 0, 0, failure_reason="path")
        if not self.ejection_free(destination):
            # Another circuit already terminates at this chip; no path can
            # succeed until it releases, so fail without walking the mesh.
            self.failed_reservations += 1
            return ScoutResult(None, 0, 0, failure_reason="chip-busy")
        circuit_id = self._next_circuit_id
        self._next_circuit_id += 1

        source = self.best_injection(packet.source_fc, destination)
        if source is None:
            # Every drop point of this controller sits on a dead router.
            self.failed_reservations += 1
            return ScoutResult(None, 0, 0, failure_reason="path")
        if not self.injection_free(source):
            # Every drop point of this controller is carrying a circuit.
            self.failed_reservations += 1
            return ScoutResult(None, 0, 0, failure_reason="path")
        if not self.routers[source].table.has_room:
            # No free row in the source router's reservation table: the scout
            # cannot even record its first hop.
            self.failed_reservations += 1
            return ScoutResult(None, 0, 0)
        stack: List[_WalkFrame] = []
        used_ports: Dict[Coord, Set[Direction]] = {}
        visits: Dict[Coord, int] = {source: 1}
        current = source
        input_port: Optional[Direction] = None  # arrived from the FC injection port
        forward_moves = 0
        backtracks = 0
        misroutes = 0

        while True:
            if forward_moves + backtracks > self.max_scout_steps:
                # Walk-length guard: unwind everything and report failure.
                while stack:
                    frame = stack.pop()
                    del self.link_owner[frame.edge]
                    self.routers[frame.node].cancel(circuit_id)
                self.failed_reservations += 1
                self.total_scout_hops += forward_moves + backtracks
                self._assert_clean(circuit_id, visits)
                return ScoutResult(None, forward_moves, backtracks, failure_reason="path")

            # _step_at returns (output_port, minimal): EJECT means eject,
            # None means backtrack, a mesh port means forward.
            output, minimal = self._step_at(
                circuit_id, current, destination, input_port, used_ports, visits
            )
            if output is not None and output is not Direction.EJECT:
                if not minimal and misroutes >= self.max_misroutes:
                    # Misroute budget exhausted: treat as no usable output.
                    output = None

            if output is Direction.EJECT:
                # Record the destination router's table entry, then commit.
                entry = input_port if input_port is not None else Direction.EJECT
                if entry is not Direction.EJECT:
                    self.routers[current].reserve(circuit_id, entry, Direction.EJECT)
                circuit = self._commit(packet, circuit_id, destination, source, stack)
                self.reservations += 1
                self.total_scout_hops += forward_moves + backtracks
                if not circuit.is_minimal:
                    self.non_minimal_circuits += 1
                return ScoutResult(circuit, forward_moves, backtracks)

            if output is not None:
                port_value = output._value_
                next_node = self._neighbors[current][port_value]
                assert next_node is not None, "usable() admitted an edge port"
                edge = self._edges[current][port_value]
                self.link_owner[edge] = circuit_id
                used = used_ports.get(current)
                if used is None:
                    used_ports[current] = {output}
                else:
                    used.add(output)
                entry = input_port if input_port is not None else Direction.EJECT
                self.routers[current].reserve(circuit_id, entry, output)
                stack.append(_WalkFrame(current, input_port, output, edge))
                visits[next_node] = visits.get(next_node, 0) + 1
                input_port = output.opposite
                current = next_node
                forward_moves += 1
                if not minimal:
                    misroutes += 1
                continue

            # BACKTRACK: the scout flips to cancel mode, retreats one hop,
            # and the upstream router clears its reservation entry (§4.2).
            if not stack:
                self.failed_reservations += 1
                self.total_scout_hops += forward_moves + backtracks
                self._assert_clean(circuit_id, visits)
                return ScoutResult(None, forward_moves, backtracks, failure_reason="path")
            frame = stack.pop()
            del self.link_owner[frame.edge]
            self.routers[frame.node].cancel(circuit_id)
            current = frame.node
            input_port = frame.entry_port
            backtracks += 1

    # ------------------------------------------------------------------ #

    def _step_at(
        self,
        circuit_id: int,
        current: Coord,
        destination: Coord,
        input_port: Optional[Direction],
        used_ports: Dict[Coord, Set[Direction]],
        visits: Dict[Coord, int],
    ) -> Tuple[Optional[Direction], bool]:
        """One Algorithm 1 invocation, inlined for the scout hot path.

        Returns ``(output, minimal)``: ``Direction.EJECT`` to eject, a mesh
        port to move forward (``minimal`` says whether it lies on a minimal
        path), or ``None`` to backtrack.  This is an exact inline of
        :func:`repro.venice.routing.route_step` (the pure, property-tested
        reference) over the usable() predicate: a port is usable iff it has
        an in-mesh *alive* neighbour whose reservation table has a free row
        and no entry for this circuit, its link is unowned *and not failed*,
        and this scout has not already reserved it at this router; candidate
        order and LFSR tie-break cadence (advance only on 2+ candidates)
        match exactly.  Dead links/routers (fault injection, DESIGN.md §7)
        are folded in exactly like busy ones, so degraded-mode routing is
        the same Algorithm 1 the property tests cover.
        """
        if visits.get(current, 0) > MAX_ROUTER_VISITS:
            # Livelock cap (§4.3): after too many revisits the scout traces
            # back to the upstream router.
            return None, False

        consumed = used_ports.get(current)
        neighbors = self._neighbors[current]
        edges = self._edges[current]
        tables = self._tables
        link_owner = self.link_owner
        capacity = self._table_capacity
        dead_links = self._dead_links
        dead_routers = self._dead_routers

        diff_x = destination[1] - current[1]
        diff_y = destination[0] - current[0]
        if diff_x == 0 and diff_y == 0:
            # Case 9: arrived; eject if the chip's I/O pins are free.
            if destination not in self.ejection_owner:
                return Direction.EJECT, True
            candidates: List[Direction] = []
        else:
            # Lines 5-26: each free minimal-direction port joins the list.
            minimal = _MINIMAL_BY_SIGN[
                ((diff_x > 0) - (diff_x < 0), (diff_y > 0) - (diff_y < 0))
            ]
            candidates = []
            for port in minimal:
                if consumed is not None and port in consumed:
                    continue
                value = port._value_  # plain attr: skips the enum descriptor
                neighbor = neighbors[value]
                if neighbor is None or neighbor in dead_routers:
                    continue
                entries = tables[neighbor]._entries
                if circuit_id in entries or len(entries) >= capacity:
                    continue
                edge = edges[value]
                if edge not in link_owner and edge not in dead_links:
                    candidates.append(port)
            if candidates:
                # Lines 27-32: one or two candidates; LFSR picks among two.
                if len(candidates) == 1:
                    return candidates[0], True
                return self.routers[current].pick_output(candidates), True

        # Lines 33-45: misroute through any free port that is neither the
        # ejection port nor the input link.
        non_minimal: List[Direction] = []
        for port in MESH_DIRECTIONS:
            if port is input_port:
                continue
            if consumed is not None and port in consumed:
                continue
            value = port._value_
            neighbor = neighbors[value]
            if neighbor is None or neighbor in dead_routers:
                continue
            entries = tables[neighbor]._entries
            if circuit_id in entries or len(entries) >= capacity:
                continue
            edge = edges[value]
            if edge not in link_owner and edge not in dead_links:
                non_minimal.append(port)
        if non_minimal:
            if len(non_minimal) == 1:
                return non_minimal[0], False
            return self.routers[current].pick_output(non_minimal), False

        # Lines 46-47: the only way out is back where we came from.
        return None, False

    def _commit(
        self,
        packet: ScoutPacket,
        circuit_id: int,
        destination: Coord,
        source: Coord,
        stack: List[_WalkFrame],
    ) -> ReservedCircuit:
        self.ejection_owner[destination] = circuit_id
        self.injection_owner[source] = circuit_id
        nodes: List[Coord] = [source]
        for frame in stack:
            next_node = self._neighbors[frame.node][frame.exit_port._value_]
            assert next_node is not None
            nodes.append(next_node)
        circuit = ReservedCircuit(
            circuit_id=circuit_id,
            packet_id=packet.packet_id,
            fc_index=packet.source_fc,
            destination=destination,
            nodes=nodes,
            edges=[frame.edge for frame in stack],
            minimal_hops=self.topology.manhattan(source, destination),
        )
        self.circuits[circuit_id] = circuit
        return circuit

    def _assert_clean(self, circuit_id: int, visited: Iterable[Coord] = ()) -> None:
        """A fully backtracked scout must leave no reservations behind.

        Only the routers the scout actually visited can hold its table rows,
        so the check walks ``visited`` (the walk's visit set) instead of the
        whole mesh; live links are scanned in full (the dict is small).
        """
        for owner in self.link_owner.values():
            if owner == circuit_id:
                raise ReservationError(
                    f"failed scout circuit {circuit_id} left a link reserved"
                )
        tables = self._tables
        for node in visited:
            if circuit_id in tables[node]._entries:
                raise ReservationError(
                    f"failed scout circuit {circuit_id} left a router table entry"
                )

    # ------------------------------------------------------------------ #
    # circuit teardown
    # ------------------------------------------------------------------ #

    def release(self, circuit: ReservedCircuit) -> None:
        """Tear down a circuit after its transfer completes."""
        stored = self.circuits.pop(circuit.circuit_id, None)
        if stored is not circuit:
            raise ReservationError(
                f"releasing unknown circuit {circuit.circuit_id}"
            )
        for edge in circuit.edges:
            owner = self.link_owner.pop(edge, None)
            if owner != circuit.circuit_id:
                raise ReservationError(
                    f"link {set(edge)} owned by {owner}, not {circuit.circuit_id}"
                )
        owner = self.ejection_owner.pop(circuit.destination, None)
        if owner != circuit.circuit_id:
            raise ReservationError(
                f"ejection at {circuit.destination} owned by {owner}, "
                f"not {circuit.circuit_id}"
            )
        if circuit.nodes:
            owner = self.injection_owner.pop(circuit.nodes[0], None)
            if owner != circuit.circuit_id:
                raise ReservationError(
                    f"injection at {circuit.nodes[0]} owned by {owner}, "
                    f"not {circuit.circuit_id}"
                )
        for node in circuit.nodes:
            router = self.routers.get(node)
            if router is not None and router.has_reservation(circuit.circuit_id):
                router.cancel(circuit.circuit_id)

    # ------------------------------------------------------------------ #
    # invariants (exercised by the property tests)
    # ------------------------------------------------------------------ #

    def assert_consistent(self) -> None:
        """Check global reservation invariants.

        * every held link belongs to exactly one live circuit,
        * circuits are pairwise link-disjoint (conflict-freedom),
        * every circuit is a connected path from its FC attach point to its
          destination,
        * no orphan link or ejection reservations exist.
        """
        seen: Dict[FrozenSet[Coord], int] = {}
        for circuit_id, circuit in self.circuits.items():
            if circuit.nodes[0] not in self.injection_points(circuit.fc_index):
                raise ReservationError(
                    f"circuit {circuit_id} starts at {circuit.nodes[0]}, "
                    f"not one of FC {circuit.fc_index}'s drop points"
                )
            if circuit.nodes[-1] != circuit.destination:
                raise ReservationError(
                    f"circuit {circuit_id} ends at {circuit.nodes[-1]}, "
                    f"not its destination {circuit.destination}"
                )
            for node_a, node_b in zip(circuit.nodes, circuit.nodes[1:]):
                if self.topology.manhattan(node_a, node_b) != 1:
                    raise ReservationError(
                        f"circuit {circuit_id} jumps {node_a} -> {node_b}"
                    )
                edge = edge_key(node_a, node_b)
                if edge in seen:
                    raise ReservationError(
                        f"link {set(edge)} shared by circuits "
                        f"{seen[edge]} and {circuit_id}"
                    )
                seen[edge] = circuit_id
                if self.link_owner.get(edge) != circuit_id:
                    raise ReservationError(
                        f"link {set(edge)} not owned by circuit {circuit_id}"
                    )
            if self.ejection_owner.get(circuit.destination) != circuit_id:
                raise ReservationError(
                    f"ejection of circuit {circuit_id} not reserved"
                )
        for edge, owner in self.link_owner.items():
            if owner not in self.circuits:
                raise ReservationError(f"orphan link {set(edge)} owned by {owner}")
        for node, owner in self.ejection_owner.items():
            if owner not in self.circuits:
                raise ReservationError(f"orphan ejection at {node} owned by {owner}")
        for node, owner in self.injection_owner.items():
            if owner not in self.circuits:
                raise ReservationError(f"orphan injection at {node} owned by {owner}")
