"""Algorithm 1: Venice's non-minimal fully-adaptive routing.

This module is deliberately *pure*: given the local view a router has -- its
coordinate, the scout's destination, the input port, and which output ports
are currently usable -- it returns what the scout does next.  The stateful
walk (link reservation, backtracking stack, livelock counters) lives in
:mod:`repro.venice.network`; keeping the decision function pure makes it
directly property-testable against the pseudocode.

Coordinate convention: ``Diff_y = dest_row - current_row``; positive means
the destination lies at a larger row index, i.e. in our
:class:`~repro.interconnect.topology.Direction` convention the scout must
move ``DOWN``.  The paper's Algorithm 1 names that port "Up"; the mapping is
a pure relabeling (the mesh has no intrinsic orientation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import RoutingError
from repro.interconnect.topology import Coord, Direction, MESH_DIRECTIONS


class StepKind(enum.Enum):
    FORWARD = "forward"  # reserve Output_port and move to the downstream router
    EJECT = "eject"  # arrived: reserve the ejection port
    BACKTRACK = "backtrack"  # no usable output: travel back to the upstream router


@dataclass(frozen=True)
class RouteStep:
    """Decision of one Algorithm 1 invocation."""

    kind: StepKind
    output: Optional[Direction] = None  # set for FORWARD
    minimal: bool = False  # FORWARD chose a minimal-path port
    candidates: int = 0  # size of the list the output was drawn from

    def __post_init__(self) -> None:
        if self.kind is StepKind.FORWARD and self.output is None:
            raise RoutingError("FORWARD step without an output port")


# The nine-way case split of Algorithm 1 lines 5-26, precomputed by the
# signs of (Diff_x, Diff_y): the sign of Diff_x selects RIGHT/LEFT/neither,
# the sign of Diff_y selects DOWN/UP/neither, and (0, 0) means the scout
# has arrived (ejection).  X-direction ports precede Y-direction ports,
# matching the pseudocode's append order.
_EJECT_ONLY = (Direction.EJECT,)
_MINIMAL_BY_SIGN = {
    (0, 0): _EJECT_ONLY,
    (1, 0): (Direction.RIGHT,),
    (-1, 0): (Direction.LEFT,),
    (0, 1): (Direction.DOWN,),
    (0, -1): (Direction.UP,),
    (1, 1): (Direction.RIGHT, Direction.DOWN),
    (1, -1): (Direction.RIGHT, Direction.UP),
    (-1, 1): (Direction.LEFT, Direction.DOWN),
    (-1, -1): (Direction.LEFT, Direction.UP),
}


def minimal_directions(current: Coord, destination: Coord) -> List[Direction]:
    """Output ports on *minimal* paths from ``current`` to ``destination``."""
    diff_x = destination[1] - current[1]
    diff_y = destination[0] - current[0]
    return list(
        _MINIMAL_BY_SIGN[((diff_x > 0) - (diff_x < 0), (diff_y > 0) - (diff_y < 0))]
    )


def route_step(
    *,
    current: Coord,
    destination: Coord,
    input_port: Optional[Direction],
    usable: Callable[[Direction], bool],
    choose: Callable[[Sequence[Direction]], Direction],
) -> RouteStep:
    """One invocation of Algorithm 1 at ``current``.

    Args:
        current / destination: router coordinates.
        input_port: the port the scout arrived on (``None`` at the source
            router, where the scout came from the flash controller's
            injection port).
        usable: predicate deciding whether an output port can be reserved
            right now.  The caller folds together link existence, link
            busyness, *and* the livelock rule that a scout may reserve each
            output port of a router only once (§4.3).
        choose: tie-breaker over candidate lists -- the router's 2-bit LFSR
            in the real hardware.

    Returns:
        The scout's action: eject, forward through a port, or backtrack.
    """
    diff_x = destination[1] - current[1]
    diff_y = destination[0] - current[0]
    minimal = _MINIMAL_BY_SIGN[
        ((diff_x > 0) - (diff_x < 0), (diff_y > 0) - (diff_y < 0))
    ]
    if minimal is _EJECT_ONLY:
        # Case 9 (Diff_x == 0 and Diff_y == 0): the output list holds the
        # ejection port.  Whether ejection is possible (the chip's I/O pins
        # are not held by another circuit) is the caller's usable() check.
        if usable(Direction.EJECT):
            return _EJECT_STEP
        output_list: List[Direction] = []
    else:
        # Lines 5-26: add each free minimal-direction port to the output list.
        output_list = [port for port in minimal if usable(port)]

    if output_list:
        # Lines 27-32: one or two candidates; LFSR picks among two.
        output = choose(output_list) if len(output_list) > 1 else output_list[0]
        return RouteStep(
            kind=StepKind.FORWARD,
            output=output,
            minimal=True,
            candidates=len(output_list),
        )

    # Lines 33-45: misroute through any free port that is neither the
    # ejection port nor the input link.
    non_minimal = [
        port
        for port in MESH_DIRECTIONS
        if port is not input_port and usable(port)
    ]
    if non_minimal:
        output = choose(non_minimal) if len(non_minimal) > 1 else non_minimal[0]
        return RouteStep(
            kind=StepKind.FORWARD,
            output=output,
            minimal=False,
            candidates=len(non_minimal),
        )

    # Lines 46-47: the only way out is back where we came from; the upstream
    # router clears this scout's reservation entry and tries another port.
    return _BACKTRACK_STEP


# Public alias for the network layer's inlined fast path (it folds this
# table into the scout walk; route_step stays the testable reference).
MINIMAL_DIRECTIONS_BY_SIGN = _MINIMAL_BY_SIGN

# RouteStep is frozen, so the two field-free outcomes are shared singletons
# (FORWARD steps carry per-call fields and stay per-call instances).
_EJECT_STEP = RouteStep(kind=StepKind.EJECT, output=Direction.EJECT, candidates=1)
_BACKTRACK_STEP = RouteStep(kind=StepKind.BACKTRACK)

# The paper caps router revisits at "four minus one, i.e., number of ports in
# a router minus the entry port of the scout packet" (footnote 5).
MAX_ROUTER_VISITS = 4
