"""Venice router chip and router reservation table (Figure 7).

Each flash node pairs an unmodified flash chip with a router chip.  The
router holds:

* a crossbar connecting RIGHT/UP/DOWN/LEFT mesh ports plus the local
  injection/ejection port toward the flash chip,
* a *router reservation table* whose rows are
  ``(packet ID, entry port, exit port, valid bit)`` -- packet ID is log2(n_fc)
  bits, ports are the 2-bit encoding of Figure 7,
* a 2-bit LFSR for pseudo-random output-port tie-breaking (§4.3).

The table is what makes the reserved circuit *bidirectional*: a data flit
arriving on the entry port is switched to the exit port, and one arriving on
the exit port back to the entry port (read data travels the backward path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReservationError
from repro.interconnect.topology import Coord, Direction
from repro.sim.rng import Lfsr2


@dataclass
class ReservationEntry:
    """One row of the router reservation table."""

    packet_id: int
    entry_port: Direction
    exit_port: Direction
    valid: bool = True

    def connects(self, port: Direction) -> Optional[Direction]:
        """The port a flit entering on ``port`` exits from, if reserved."""
        if not self.valid:
            return None
        if port is self.entry_port:
            return self.exit_port
        if port is self.exit_port:
            return self.entry_port
        return None


class ReservationTable:
    """Fixed-capacity reservation table; capacity == number of FCs.

    The hardware table has one row per flash controller (packet IDs are
    log2(n) bits, §4.2).  Rows are keyed by the *circuit* occupying them;
    the row count is the physical constraint a scout must respect when
    entering a router (a full table means no row is left to record the
    entry/exit ports).
    """

    @property
    def has_room(self) -> bool:
        return len(self._entries) < self.capacity

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ReservationError("reservation table needs capacity >= 1")
        self.capacity = capacity
        self._entries: Dict[int, ReservationEntry] = {}

    def insert(self, packet_id: int, entry_port: Direction, exit_port: Direction) -> None:
        if packet_id < 0:
            raise ReservationError(f"negative packet id {packet_id}")
        if len(self._entries) >= self.capacity and packet_id not in self._entries:
            raise ReservationError(
                f"reservation table full ({self.capacity} rows)"
            )
        if packet_id in self._entries:
            raise ReservationError(f"packet id {packet_id} already has an entry")
        if entry_port is exit_port:
            raise ReservationError("entry and exit port must differ")
        self._entries[packet_id] = ReservationEntry(packet_id, entry_port, exit_port)

    def remove(self, packet_id: int) -> ReservationEntry:
        entry = self._entries.pop(packet_id, None)
        if entry is None:
            raise ReservationError(f"no reservation for packet id {packet_id}")
        entry.valid = False
        return entry

    def lookup(self, packet_id: int) -> Optional[ReservationEntry]:
        return self._entries.get(packet_id)

    def switch(self, packet_id: int, arriving_port: Direction) -> Direction:
        """Crossbar switching of a data flit along the reserved circuit."""
        entry = self._entries.get(packet_id)
        if entry is None:
            raise ReservationError(f"switching without reservation: packet {packet_id}")
        out = entry.connects(arriving_port)
        if out is None:
            raise ReservationError(
                f"packet {packet_id} arrived on unreserved port {arriving_port}"
            )
        return out

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[ReservationEntry]:
        return list(self._entries.values())


class Router:
    """One Venice router chip at mesh coordinate ``position``."""

    def __init__(self, position: Coord, fc_count: int, lfsr_seed: int = 1) -> None:
        self.position = position
        self.table = ReservationTable(fc_count)
        self.lfsr = Lfsr2(lfsr_seed)

    def pick_output(self, candidates: List[Direction]) -> Direction:
        """LFSR tie-break among candidate output ports (Algorithm 1 l.28)."""
        if not candidates:
            raise ReservationError("pick_output with no candidates")
        if len(candidates) == 1:
            return candidates[0]
        return candidates[self.lfsr.pick(len(candidates))]

    def reserve(self, packet_id: int, entry_port: Direction, exit_port: Direction) -> None:
        self.table.insert(packet_id, entry_port, exit_port)

    def cancel(self, packet_id: int) -> None:
        """Cancel-mode scout flit clears this router's entry (§4.2)."""
        self.table.remove(packet_id)

    def has_reservation(self, packet_id: int) -> bool:
        return self.table.lookup(packet_id) is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Router{self.position}({len(self.table)} reserved)"


def port_bits(direction: Direction) -> int:
    """2-bit mesh-port encoding of Figure 7 (RIGHT=00, UP=01, DOWN=10, LEFT=11)."""
    if direction is Direction.EJECT:
        raise ReservationError("ejection port has no 2-bit mesh encoding")
    return direction.value


def port_from_bits(bits: int) -> Direction:
    mapping: Dict[int, Direction] = {
        0b00: Direction.RIGHT,
        0b01: Direction.UP,
        0b10: Direction.DOWN,
        0b11: Direction.LEFT,
    }
    if bits not in mapping:
        raise ReservationError(f"invalid 2-bit port encoding {bits}")
    return mapping[bits]
