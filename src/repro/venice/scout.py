"""Scout packet encoding (Figure 6).

A scout packet is two 8-bit flits:

* header flit: ``[2-bit type][6-bit destination flash chip ID]``
* tail flit:   ``[2-bit type][3-bit source flash controller ID][3 unused]``

The 2-bit type field:

* most significant bit: 0 = header flit, 1 = tail flit,
* least significant bit: 1 = reserve mode, 0 = cancel mode.

Six destination bits address up to 64 flash chips and three source bits up
to 8 flash controllers -- the Table 1 configuration.  The encoder widths are
parameterised so the Figure 15 sensitivity geometries (4x16, 16x4) encode
too; the defaults reproduce the figure exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import RoutingError


class FlitRole(enum.Enum):
    HEADER = 0
    TAIL = 1


class FlitMode(enum.Enum):
    CANCEL = 0
    RESERVE = 1


@dataclass(frozen=True)
class ScoutFlit:
    """One 8-bit scout flit."""

    role: FlitRole
    mode: FlitMode
    payload: int  # 6-bit destination chip id (header) or FC id in top 3 bits (tail)

    def encode(self, payload_bits: int = 6) -> int:
        if not 0 <= self.payload < (1 << payload_bits):
            raise RoutingError(
                f"payload {self.payload} does not fit in {payload_bits} bits"
            )
        type_bits = (self.role.value << 1) | self.mode.value
        return (type_bits << payload_bits) | self.payload

    @classmethod
    def decode(cls, raw: int, payload_bits: int = 6) -> "ScoutFlit":
        if not 0 <= raw < (1 << (payload_bits + 2)):
            raise RoutingError(f"flit value {raw} out of range")
        type_bits = raw >> payload_bits
        payload = raw & ((1 << payload_bits) - 1)
        return cls(
            role=FlitRole((type_bits >> 1) & 1),
            mode=FlitMode(type_bits & 1),
            payload=payload,
        )


@dataclass(frozen=True)
class ScoutPacket:
    """Header + tail flit pair.

    The packet ID equals the source flash controller ID (paper §4.2), which
    is what bounds simultaneous reservations to the number of controllers.
    """

    destination_chip: int
    source_fc: int
    mode: FlitMode = FlitMode.RESERVE
    dest_bits: int = 6
    fc_bits: int = 3

    def __post_init__(self) -> None:
        if not 0 <= self.destination_chip < (1 << self.dest_bits):
            raise RoutingError(
                f"destination chip {self.destination_chip} exceeds "
                f"{self.dest_bits}-bit field"
            )
        if not 0 <= self.source_fc < (1 << self.fc_bits):
            raise RoutingError(
                f"source FC {self.source_fc} exceeds {self.fc_bits}-bit field"
            )

    @property
    def packet_id(self) -> int:
        """Packet ID == source flash controller ID (§4.2)."""
        return self.source_fc

    @property
    def header_flit(self) -> ScoutFlit:
        return ScoutFlit(FlitRole.HEADER, self.mode, self.destination_chip)

    @property
    def tail_flit(self) -> ScoutFlit:
        # FC id occupies the 3 bits after the type field; the remaining
        # payload bits are unused (Figure 6).
        unused_bits = self.dest_bits - self.fc_bits
        return ScoutFlit(FlitRole.TAIL, self.mode, self.source_fc << unused_bits)

    def encode(self) -> bytes:
        """The on-wire two-byte scout packet."""
        return bytes(
            [
                self.header_flit.encode(self.dest_bits),
                self.tail_flit.encode(self.dest_bits),
            ]
        )

    @classmethod
    def decode(cls, raw: bytes, dest_bits: int = 6, fc_bits: int = 3) -> "ScoutPacket":
        if len(raw) != 2:
            raise RoutingError(f"scout packet must be 2 flits, got {len(raw)}")
        header = ScoutFlit.decode(raw[0], dest_bits)
        tail = ScoutFlit.decode(raw[1], dest_bits)
        if header.role is not FlitRole.HEADER or tail.role is not FlitRole.TAIL:
            raise RoutingError("scout flit roles corrupted")
        if header.mode is not tail.mode:
            raise RoutingError("scout header/tail mode mismatch")
        unused_bits = dest_bits - fc_bits
        return cls(
            destination_chip=header.payload,
            source_fc=tail.payload >> unused_bits,
            mode=header.mode,
            dest_bits=dest_bits,
            fc_bits=fc_bits,
        )

    def cancelled(self) -> "ScoutPacket":
        """The same packet flipped into cancel mode (backtracking, §4.2)."""
        return ScoutPacket(
            destination_chip=self.destination_chip,
            source_fc=self.source_fc,
            mode=FlitMode.CANCEL,
            dest_bits=self.dest_bits,
            fc_bits=self.fc_bits,
        )


def required_dest_bits(total_chips: int) -> int:
    """Bits needed to address every flash chip (6 for the 64-chip Table 1)."""
    if total_chips < 1:
        raise RoutingError("need at least one chip")
    return max(1, (total_chips - 1).bit_length())


def required_fc_bits(flash_controllers: int) -> int:
    """Bits needed to name every flash controller (3 for 8 FCs)."""
    if flash_controllers < 1:
        raise RoutingError("need at least one flash controller")
    return max(1, (flash_controllers - 1).bit_length())
