"""Venice: the paper's contribution.

A low-cost interconnection network of *flash nodes* (flash chip + separate
router chip), circuit-switched via scout-packet path reservation, routed by
a non-minimal fully-adaptive backtracking algorithm (paper §4).

Modules:

* :mod:`repro.venice.scout` -- scout packet flit encoding (Figure 6),
* :mod:`repro.venice.router` -- router chip + router reservation table
  (Figure 7),
* :mod:`repro.venice.routing` -- Algorithm 1 (output-port selection) and the
  full backtracking walk with deadlock/livelock safeguards (§4.3),
* :mod:`repro.venice.network` -- mesh-wide link/ejection reservation state,
* :mod:`repro.venice.fabric` -- the :class:`~repro.interconnect.base.Fabric`
  implementation: flash-controller selection, reservation retries, circuit
  hold and release.
"""

from repro.venice.scout import ScoutFlit, ScoutPacket, FlitRole, FlitMode
from repro.venice.router import Router, ReservationEntry, ReservationTable
from repro.venice.routing import RouteStep, StepKind, minimal_directions, route_step
from repro.venice.network import VeniceNetwork, ReservedCircuit, ScoutResult
from repro.venice.fabric import VeniceFabric

__all__ = [
    "ScoutFlit",
    "ScoutPacket",
    "FlitRole",
    "FlitMode",
    "Router",
    "ReservationEntry",
    "ReservationTable",
    "RouteStep",
    "StepKind",
    "minimal_directions",
    "route_step",
    "VeniceNetwork",
    "ReservedCircuit",
    "ScoutResult",
    "VeniceFabric",
]
