"""Degraded-mode state for the Venice mesh: dead links, dead routers, and
the partition oracle.

This is where the paper's path-diversity claim gets its adversarial test
bench: Venice's non-minimal fully-adaptive routing "can steer around busy
links"; a *dead* link or router is simply a link that never becomes free, so
the very same Algorithm 1 backtracking machinery routes around permanent
failures -- no new routing logic is needed, only a fault mask folded into
the ``usable()`` predicate (see DESIGN.md §7).

:class:`DegradedVenice` owns that mask for one
:class:`~repro.venice.network.VeniceNetwork`:

* ``set_link`` / ``set_router`` mutate the network's dead sets (which the
  inlined scout walk consults) and bump a *fault epoch*;
* :meth:`is_partitioned` answers "can any scout ever reach this chip" by a
  BFS over the alive topology from every alive injection drop point,
  memoised per epoch -- reservation *failures* on a connected mesh retry,
  true partitions raise :class:`~repro.errors.RoutingError` at the fabric
  layer instead of livelocking.

Committed circuits are not torn down by a fault: circuits live for
microseconds while fault timescales are milliseconds, so an in-flight
transfer completes and the dead element is simply never reserved again.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.errors import RoutingError
from repro.interconnect.topology import MESH_DIRECTIONS, Coord, edge_key


class DegradedVenice:
    """Fault mask and partition oracle for one :class:`VeniceNetwork`."""

    def __init__(self, network) -> None:
        self.network = network
        #: Monotone counter bumped on every fault transition; memoised
        #: reachability is valid only for the epoch it was computed in.
        self.epoch = 0
        self._reachable_epoch = -1
        self._reachable: FrozenSet[Coord] = frozenset()
        self._fc_reachable: dict = {}  # fc -> (epoch, frozenset)
        self._components_epoch = -1
        self._components: Dict[Coord, int] = {}

    # ------------------------------------------------------------------ #
    # fault transitions
    # ------------------------------------------------------------------ #

    def set_link(self, a: Coord, b: Coord, down: bool = True) -> None:
        """Fail (``down=True``) or repair one bidirectional mesh link."""
        topology = self.network.topology
        a, b = tuple(a), tuple(b)
        if not (topology.contains(a) and topology.contains(b)):
            raise RoutingError(f"link {a}-{b} outside the {topology.rows}x{topology.cols} mesh")
        edge = edge_key(a, b)  # raises on a self-edge
        if topology.manhattan(a, b) != 1:
            raise RoutingError(f"{a} and {b} are not mesh neighbours")
        if down:
            self.network._dead_links.add(edge)
        else:
            self.network._dead_links.discard(edge)
        self.epoch += 1

    def set_router(self, node: Coord, down: bool = True) -> None:
        """Fail or repair one router chip (all four ports plus ejection)."""
        node = tuple(node)
        if not self.network.topology.contains(node):
            raise RoutingError(
                f"router {node} outside the "
                f"{self.network.topology.rows}x{self.network.topology.cols} mesh"
            )
        if down:
            self.network._dead_routers.add(node)
        else:
            self.network._dead_routers.discard(node)
        self.epoch += 1

    @property
    def dead_links(self) -> FrozenSet:
        """Snapshot of the currently failed mesh links (edge keys)."""
        return frozenset(self.network._dead_links)

    @property
    def dead_routers(self) -> FrozenSet[Coord]:
        """Snapshot of the currently failed router coordinates."""
        return frozenset(self.network._dead_routers)

    # ------------------------------------------------------------------ #
    # partition oracle
    # ------------------------------------------------------------------ #

    def _bfs_from(self, sources) -> FrozenSet[Coord]:
        """Routers reachable from ``sources`` over alive links and routers."""
        network = self.network
        dead_links = network._dead_links
        dead_routers = network._dead_routers
        topology = network.topology
        frontier = [point for point in sources if point not in dead_routers]
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            for direction in MESH_DIRECTIONS:
                neighbor = topology.neighbor(node, direction)
                if neighbor is None or neighbor in seen or neighbor in dead_routers:
                    continue
                if edge_key(node, neighbor) in dead_links:
                    continue
                seen.add(neighbor)
                frontier.append(neighbor)
        return frozenset(seen)

    def alive_reachable(self) -> FrozenSet[Coord]:
        """Routers reachable from *any* alive injection drop over alive links.

        Busy-ness is ignored on purpose: a busy link frees up, a dead one
        does not, so this is exactly the "can a scout ever succeed" set.
        Memoised per fault epoch (faults are rare events; scout failures are
        not).
        """
        if self._reachable_epoch == self.epoch:
            return self._reachable
        self._reachable = self._bfs_from(
            point for rows in self.network._injection_rows for point in rows
        )
        self._reachable_epoch = self.epoch
        return self._reachable

    def fc_reachable(self, fc_index: int) -> FrozenSet[Coord]:
        """Routers reachable from controller ``fc_index``'s alive drop points.

        Per-controller view of :meth:`alive_reachable`, used to keep a
        transfer from being handed a controller that faults have cut off
        from its destination.  Memoised per fault epoch.
        """
        cached = self._fc_reachable.get(fc_index)
        if cached is not None and cached[0] == self.epoch:
            return cached[1]
        reachable = self._bfs_from(self.network._injection_rows[fc_index])
        self._fc_reachable[fc_index] = (self.epoch, reachable)
        return reachable

    def fc_can_reach(self, fc_index: int, destination: Coord) -> bool:
        """True when controller ``fc_index`` has an alive path to ``destination``."""
        return tuple(destination) in self.fc_reachable(fc_index)

    def components(self) -> Dict[Coord, int]:
        """Component label for every alive router (memoised per epoch).

        Two routers share a label iff an alive path connects them.  Dead
        routers carry no label.  Injection-drop selection uses this: a drop
        in a different component than the destination is a guaranteed dead
        end for the scout walk, however close its coordinates look.
        """
        if self._components_epoch == self.epoch:
            return self._components
        network = self.network
        dead_links = network._dead_links
        dead_routers = network._dead_routers
        topology = network.topology
        labels: Dict[Coord, int] = {}
        label = 0
        for start in network.routers:
            if start in labels or start in dead_routers:
                continue
            label += 1
            frontier = [start]
            labels[start] = label
            while frontier:
                node = frontier.pop()
                for direction in MESH_DIRECTIONS:
                    neighbor = topology.neighbor(node, direction)
                    if (
                        neighbor is None
                        or neighbor in labels
                        or neighbor in dead_routers
                    ):
                        continue
                    if edge_key(node, neighbor) in dead_links:
                        continue
                    labels[neighbor] = label
                    frontier.append(neighbor)
        self._components = labels
        self._components_epoch = self.epoch
        return labels

    def same_component(self, a: Coord, b: Coord) -> bool:
        """True when ``a`` and ``b`` are alive and connected by alive links."""
        labels = self.components()
        label = labels.get(tuple(a))
        return label is not None and label == labels.get(tuple(b))

    def is_partitioned(self, destination: Coord) -> bool:
        """True when no alive path from any injection drop reaches ``destination``.

        This is the loud-failure criterion: a scout failing on a connected
        mesh will eventually succeed once circuits release, so the fabric
        retries; a destination outside the alive component can never be
        reached and the fabric raises :class:`~repro.errors.RoutingError`.
        """
        return tuple(destination) not in self.alive_reachable()
