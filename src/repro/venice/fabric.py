"""Venice circuit-switched fabric (paper §4).

For each transfer phase the fabric:

1. selects a flash controller -- the closest (same-row) FC if it is
   available, otherwise the nearest free FC (§4.2); if every FC is busy the
   request queues FIFO on the controller pool,
2. sends a reserve-mode scout packet (:meth:`VeniceNetwork.try_reserve`);
   on failure the FC "retries the path reservation process immediately by
   sending a new scout packet" -- modelled with a small retry gap so other
   circuits can release in between,
3. charges the scout round trip (forward + return over the reserved path),
4. holds the circuit for the Equation (1) serialization time of the payload,
5. releases the circuit and the controller.

Path-conflict accounting follows §6.3: a transfer "experiences a path
conflict" iff its *first* scout attempt fails.  Waiting for a free flash
controller is tracked separately (``fc_waits``) -- the paper lists it as a
distinct reason a reservation cannot start.

Controller occupancy: an FC is busy only while its scout is in flight (the
packet-id field limits each controller to one outstanding scout, §4.2); the
circuits a controller has established live on after the scout returns, so a
controller services several concurrent transfers.  DESIGN.md details why
the published throughput numbers force this reading and what hardware
assumption it implies (multiple DMA contexts per controller).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.errors import ReservationError, RoutingError
from repro.interconnect.base import Fabric, make_outcome
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine
from repro.sim.resources import ResourcePool
from repro.venice.network import ReservedCircuit, VeniceNetwork
from repro.venice.scout import (
    FlitMode,
    ScoutPacket,
    required_dest_bits,
    required_fc_bits,
)


class VeniceFabric(Fabric):
    """The paper's contribution: reservation-based conflict-free transfers."""

    design = DesignKind.VENICE

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        super().__init__(engine, config)
        rows, cols = config.mesh_rows, config.mesh_cols
        self.network = VeniceNetwork(
            rows, cols, config.flash_controllers, lfsr_seed=config.seed % 3 + 1
        )
        self.fc_pool = ResourcePool(engine, "venice-fc", config.flash_controllers)
        self.dest_bits = required_dest_bits(config.geometry.total_chips)
        self.fc_bits = required_fc_bits(config.flash_controllers)
        # accounting beyond FabricStats
        self.fc_waits = 0
        self.retries_exhausted = 0
        self.circuit_hop_histogram: List[int] = []
        self.active_circuits_per_fc: List[int] = [0] * config.flash_controllers
        # Per-home-row FC order by (distance, index); the load tie-break is
        # applied at transfer time with a stable sort over this base order.
        self._round_trip_cache: dict = {}
        self._circuit_ns_cache: dict = {}
        self._fc_by_distance: List[List[int]] = [
            sorted(
                range(config.flash_controllers),
                key=lambda fc: (abs(fc - home), fc),
            )
            for home in range(config.geometry.channels)
        ]
        # Event-driven retry: failed scouts park here and are woken when any
        # circuit releases or any fault transitions (the only events that
        # can change a reservation's outcome).
        self._release_epoch = engine.event("venice-release-epoch")

    # ------------------------------------------------------------------ #
    # fault injection (DESIGN.md §7)
    # ------------------------------------------------------------------ #

    def apply_link_fault(self, a, b, down: bool) -> None:
        """Fail/repair one mesh link; parked scouts re-scout immediately.

        Venice's fully-adaptive routing treats a dead link exactly like a
        permanently busy one, so no special routing mode exists: scouts
        steer around it via the ordinary Algorithm 1 backtracking walk.
        """
        self.network.degraded_mode().set_link(tuple(a), tuple(b), down)
        self._notify_release()

    def apply_router_fault(self, node, down: bool) -> None:
        """Fail/repair one router chip; parked scouts re-scout immediately."""
        self.network.degraded_mode().set_router(tuple(node), down)
        self._notify_release()

    # ------------------------------------------------------------------ #

    def _fc_preference(self, chip: ChipAddress) -> Tuple[int, ...]:
        """FC order: least-loaded first, ties broken by distance to the chip.

        "Venice checks if the closest flash controller to the target flash
        chip is available; otherwise it uses the nearest free flash
        controller" (§4.2).  With multi-circuit controllers, "available"
        means *lightly loaded*: a controller whose injection region is
        saturated with live circuits cannot place another minimal path, so
        spreading by live-circuit count is what unlocks the mesh's L-shaped
        path diversity across rows.
        """
        # Stable sort over the precomputed (distance, index) order: sorting
        # by live-circuit count alone yields exactly the historical
        # (count, distance, index) ordering at a fraction of the key cost.
        return tuple(
            sorted(
                self._fc_by_distance[chip.channel],
                key=self.active_circuits_per_fc.__getitem__,
            )
        )

    def _reachable_preference(
        self, preference: Tuple[int, ...], destination
    ) -> Tuple[int, ...]:
        """Filter an FC preference order to controllers that can reach.

        Raises :class:`~repro.errors.RoutingError` when *no* controller has
        an alive path -- that is the definition of a partitioned chip.
        """
        degraded = self.network.degraded_mode()
        reachable = tuple(
            fc for fc in preference if degraded.fc_can_reach(fc, destination)
        )
        if not reachable:
            raise RoutingError(
                f"chip {destination} unreachable: injected faults partition "
                "it from every flash controller"
            )
        return reachable

    def scout_round_trip_ns(self, hops: int) -> int:
        """Forward reservation walk + return trip of the scout (§4.2)."""
        cached = self._round_trip_cache.get(hops)
        if cached is None:
            interconnect = self.config.interconnect
            per_hop = interconnect.link_cycle_ns + interconnect.router_pipeline_ns
            cached = self._round_trip_cache[hops] = max(1, round(2 * hops * per_hop))
        return cached

    def circuit_transfer_ns(
        self, circuit: ReservedCircuit, payload_bytes: int, include_command: bool
    ) -> int:
        """Equation (1): (distance + size/link_width) x link latency."""
        key = (circuit.total_hops, payload_bytes, include_command)
        cached = self._circuit_ns_cache.get(key)
        if cached is None:
            interconnect = self.config.interconnect
            cached = self._circuit_ns_cache[key] = self.command_ns(
                include_command
            ) + interconnect.link_transfer_ns(
                payload_bytes, distance_hops=circuit.total_hops
            )
        return cached

    # ------------------------------------------------------------------ #

    def _send_command_packet(
        self, chip: ChipAddress, destination, start: int
    ) -> Generator:
        """Command-only phase: a flit-sized packet, no circuit.

        Flash commands are two flits -- the same size as a scout packet --
        and the routers carry them in their two 8-bit per-port buffers
        (Table 1) without reserving links.  Only data transfers need the
        conflict-free circuit.
        """
        home = destination[0] % self.config.flash_controllers
        drop = self.network.best_injection(home, destination)
        if drop is None:
            # No usable home drop.  A partitioned chip (no drop of ANY
            # controller shares its component -- which implies drop is None
            # here, since the home drops include every router of the
            # destination's row) is unreachable for buffered traffic too;
            # otherwise the command detours through the nearest controller
            # that can still reach.
            if self.network.is_partitioned(destination):
                raise RoutingError(
                    f"chip {destination} unreachable: injected faults "
                    "partition it from every flash controller"
                )
            degraded = self.network.degraded_mode()
            for fc in self._fc_preference(chip):
                if degraded.fc_can_reach(fc, destination):
                    home = fc
                    drop = self.network.best_injection(fc, destination)
                    break
            assert drop is not None, "unpartitioned chip must have a drop"
        hops = self.network.topology.manhattan(drop, destination) + 2
        interconnect = self.config.interconnect
        per_hop = interconnect.link_cycle_ns + interconnect.router_pipeline_ns
        latency = self.command_ns(True) + max(1, round(hops * per_hop))
        yield latency
        outcome = make_outcome(
            waited=False,
            conflicted=False,
            start_ns=start,
            end_ns=self.engine.now,
            hops=hops,
            fc_index=home,
        )
        self._record(outcome, 0)
        return outcome

    def transfer(
        self,
        chip: ChipAddress,
        payload_bytes: int,
        include_command: bool = True,
    ) -> Generator:
        start = self.engine.now
        destination = (chip.channel, chip.way)

        if payload_bytes == 0:
            # Flit-sized command: buffered packet traffic, no reservation.
            outcome = yield from self._send_command_packet(chip, destination, start)
            return outcome

        network = self.network
        preference = self._fc_preference(chip)
        if network._dead_links or network._dead_routers:
            # Degraded mode: only controllers with an alive path to the
            # destination may serve this transfer -- handing it to a cut-off
            # controller would park it forever while others could reach.
            preference = self._reachable_preference(preference, destination)
            fc_index, fc_lease = yield self.fc_pool.acquire_preferring(
                preference, restrict=True
            )
        else:
            fc_index, fc_lease = yield self.fc_pool.acquire_preferring(preference)
        fc_waited = fc_lease.waited
        if fc_waited:
            self.fc_waits += 1

        packet = ScoutPacket(
            destination_chip=chip.flat_index(self.config.geometry),
            source_fc=fc_index,
            mode=FlitMode.RESERVE,
            dest_bits=self.dest_bits,
            fc_bits=self.fc_bits,
        )

        total_attempts = 0
        first_attempt_failed = False
        chip_busy_wait = False
        circuit = None
        scout_hops = 0
        maze_retries = 0
        while circuit is None:
            total_attempts += 1
            result = self.network.try_reserve(packet, destination)
            self.stats.scout_attempts_total += 1
            scout_hops = result.scout_hops
            if result.succeeded:
                circuit = result.circuit
                break
            if result.failed_on_chip:
                # Waiting on the target chip's own interface: chip busyness,
                # not a path conflict (§3.3's ideal-SSD distinction).
                chip_busy_wait = True
            elif total_attempts >= 1 and not chip_busy_wait:
                if total_attempts == 1:
                    first_attempt_failed = True
            self.stats.scout_failures_total += 1
            if result.failure_reason == "path" and (
                network._dead_links or network._dead_routers
            ):
                if network.is_partitioned(destination):
                    # A failed scout on a connected mesh will eventually
                    # succeed once circuits release; a partitioned
                    # destination never will.  Fail loudly instead of
                    # livelocking (DESIGN.md §7).
                    self.fc_pool.release(fc_index, fc_lease)
                    raise RoutingError(
                        f"chip {destination} unreachable: injected faults "
                        "partition it from every flash controller"
                    )
                degraded = network.degraded_mode()
                if not degraded.fc_can_reach(fc_index, destination):
                    # A fault transitioned while this controller held the
                    # transfer and cut it off; hand the transfer to a
                    # controller that still has an alive path.
                    self.fc_pool.release(fc_index, fc_lease)
                    fc_index, fc_lease = yield self.fc_pool.acquire_preferring(
                        self._reachable_preference(
                            self._fc_preference(chip), destination
                        ),
                        restrict=True,
                    )
                    packet = ScoutPacket(
                        destination_chip=chip.flat_index(self.config.geometry),
                        source_fc=fc_index,
                        mode=FlitMode.RESERVE,
                        dest_bits=self.dest_bits,
                        fc_bits=self.fc_bits,
                    )
                    continue
            if (
                result.failure_reason == "path"
                and not network.circuits
                and (network._dead_links or network._dead_routers)
            ):
                # No live circuit means no release event is coming: the
                # failure is the fault maze itself (misroute/livelock budget
                # exhausted on a connected mesh).  Retry on the hardware gap
                # -- the LFSRs advance between attempts -- and fail loudly
                # once the retry budget is spent rather than stalling.
                maze_retries += 1
                if maze_retries > self.config.interconnect.max_scout_retries:
                    self.fc_pool.release(fc_index, fc_lease)
                    raise RoutingError(
                        f"no conflict-free route to {destination} within the "
                        "misroute budget: the injected fault set leaves the "
                        "mesh connected but unroutable for Algorithm 1"
                    )
                yield self.config.interconnect.scout_retry_gap_ns
                continue
            # The paper's FC "retries immediately"; nothing can change until
            # some circuit releases (or a fault transitions), so the retry
            # parks on the next release event instead of busy-spinning
            # scouts through the mesh.
            yield self._release_epoch

        if circuit is None:  # pragma: no cover - loop only exits with a circuit
            raise ReservationError("reservation loop exited without a circuit")

        # Scout round trip before the transfer can start (§4.2: the FC
        # schedules the transfer once the scout returns over the backward
        # path).  The controller is busy exactly until its scout returns;
        # the established circuit then carries the transfer on its own.
        self.active_circuits_per_fc[fc_index] += 1
        round_trip = self.scout_round_trip_ns(max(circuit.total_hops, scout_hops))
        yield round_trip
        self.fc_pool.release(fc_index, fc_lease)

        occupancy = self.circuit_transfer_ns(circuit, payload_bytes, include_command)
        if occupancy:
            yield occupancy

        self.network.release(circuit)
        self.active_circuits_per_fc[fc_index] -= 1
        self._notify_release()

        self.circuit_hop_histogram.append(circuit.total_hops)
        self.stats.link_hop_busy_ns += occupancy * max(1, circuit.mesh_hops)
        self.stats.router_active_ns += occupancy * len(circuit.nodes)

        conflicted = first_attempt_failed
        outcome = make_outcome(
            waited=fc_waited or conflicted or chip_busy_wait,
            conflicted=conflicted,
            start_ns=start,
            end_ns=self.engine.now,
            hops=circuit.total_hops,
            fc_index=fc_index,
            scout_attempts=total_attempts,
        )
        self._record(outcome, payload_bytes)
        return outcome

    # ------------------------------------------------------------------ #

    def _notify_release(self) -> None:
        """Wake every scout parked on a failed reservation."""
        epoch, self._release_epoch = (
            self._release_epoch,
            self.engine.event("venice-release-epoch"),
        )
        epoch.succeed(None)

    @property
    def first_try_success_fraction(self) -> float:
        """Fraction of transfers whose first scout reserved a circuit."""
        if self.stats.transfers == 0:
            return 1.0
        return 1.0 - self.stats.conflicted_transfers / self.stats.transfers

    def mean_circuit_hops(self) -> float:
        if not self.circuit_hop_histogram:
            return 0.0
        return sum(self.circuit_hop_histogram) / len(self.circuit_hop_histogram)
