"""Garbage collection (paper §2.2, §8).

The collector follows the four GC steps the paper lists: (1) choose the
victim block with the fewest valid pages, (2) copy its valid pages to fresh
locations, (3) update the logical-to-physical mapping of the moved pages,
and (4) erase the victim.

Valid-page migration generates *internal* read/program transactions that
travel the same communication fabric as host traffic -- the GC interference
the §8 discussion says Venice's path diversity helps schedule around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Tuple

from repro.config.ssd_config import SsdConfig
from repro.controller.pipeline import TransactionPipeline
from repro.controller.transaction import (
    FlashTransaction,
    TransactionKind,
    TransactionSource,
)
from repro.errors import GarbageCollectionError
from repro.ftl.allocator import PageAllocator
from repro.ftl.mapping import MappingTable
from repro.nand.address import PhysicalPageAddress
from repro.nand.array import FlashArray
from repro.nand.chip import PageState
from repro.sim.engine import Engine


@dataclass
class GcPolicy:
    """When GC starts and stops, per plane."""

    threshold_free_fraction: float = 0.05
    stop_free_fraction: float = 0.08
    max_blocks_per_invocation: int = 4

    def needs_gc(self, free_fraction: float) -> bool:
        """Whether a plane's free fraction fell below the start watermark."""
        return free_fraction < self.threshold_free_fraction

    def should_stop(self, free_fraction: float) -> bool:
        """Whether a plane recovered past the stop watermark."""
        return free_fraction >= self.stop_free_fraction


class GarbageCollector:
    """Greedy (fewest-valid-pages) victim selection with per-plane scope."""

    def __init__(
        self,
        engine: Engine,
        config: SsdConfig,
        array: FlashArray,
        mapping: MappingTable,
        allocator: PageAllocator,
        pipeline: TransactionPipeline,
        policy: Optional[GcPolicy] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.array = array
        self.mapping = mapping
        self.allocator = allocator
        self.pipeline = pipeline
        self.policy = policy or GcPolicy(
            threshold_free_fraction=config.gc_threshold_free_fraction,
            stop_free_fraction=config.gc_stop_free_fraction,
        )
        self._active_planes: set = set()
        self.invocations = 0
        self.blocks_reclaimed = 0
        self.pages_migrated = 0
        self.pages_written = 0
        self.erases_issued = 0

    # ------------------------------------------------------------------ #

    def select_victim(self, plane_flat: int) -> Optional[int]:
        """Greedy victim: fully-written block with the fewest valid pages.

        Ties break toward the lower erase count so GC pressure spreads wear.
        Returns None when no closed block exists (nothing reclaimable).
        """
        plane = self.allocator.plane(plane_flat)
        open_block = self.allocator.open_block_of(plane_flat)
        best: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for index, block in enumerate(plane.blocks):
            if index == open_block or block.is_erased:
                continue
            if block.pending_programs > 0:
                continue  # in-flight programs: erasing now would corrupt them
            if block.valid_count == block.pages_per_block:
                continue  # nothing to reclaim
            key = (block.valid_count, block.erase_count)
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best

    def maybe_trigger(self, plane_flat: int, force: bool = False) -> bool:
        """Spawn a GC process for a plane if it crossed the threshold.

        ``force`` skips the watermark check; the device uses it when a host
        write stalls on allocation (the write cliff) and space must be
        reclaimed regardless of per-plane free fractions.
        """
        if plane_flat in self._active_planes:
            return False
        if not force:
            free = self.allocator.free_page_fraction(plane_flat)
            if not self.policy.needs_gc(free):
                return False
        self._active_planes.add(plane_flat)
        self.engine.process(self._collect(plane_flat), name=f"gc-plane{plane_flat}")
        return True

    # ------------------------------------------------------------------ #

    def _allocate_anywhere_for_gc(self):
        """Fallback migration target: any plane, reserve blocks allowed."""
        for plane_flat in range(self.allocator.plane_count()):
            try:
                return self.allocator.allocate_in_plane(plane_flat, for_gc=True)
            except GarbageCollectionError:
                continue
        raise GarbageCollectionError("no migration target anywhere")

    def _collect(self, plane_flat: int) -> Generator:
        """GC loop for one plane; runs until the stop watermark is reached."""
        self.invocations += 1
        try:
            blocks_done = 0
            while blocks_done < self.policy.max_blocks_per_invocation:
                free = self.allocator.free_page_fraction(plane_flat)
                if blocks_done > 0 and self.policy.should_stop(free):
                    break
                victim = self.select_victim(plane_flat)
                if victim is None:
                    break
                try:
                    yield from self._reclaim_block(plane_flat, victim)
                except GarbageCollectionError:
                    # No migration target anywhere: abandon this pass
                    # instead of crashing the engine mid-process.  The
                    # host-side stall loop keeps forcing GC and, if space
                    # genuinely cannot be reclaimed, surfaces the error
                    # cleanly after its bounded retries.
                    break
                blocks_done += 1
                self.blocks_reclaimed += 1
        finally:
            self._active_planes.discard(plane_flat)

    def _reclaim_block(self, plane_flat: int, victim_block: int) -> Generator:
        """Steps 2-4 of the paper's GC description for one victim block."""
        plane = self.allocator.plane(plane_flat)
        block = plane.block(victim_block)
        geometry = self.array.geometry
        page_size = geometry.page_size

        # Reconstruct the victim's physical addresses from the plane index.
        die_flat, plane_index = divmod(plane_flat, geometry.planes_per_die)
        chip_flat, die_index = divmod(die_flat, geometry.dies_per_chip)
        from repro.nand.address import ChipAddress  # local to avoid cycle

        chip_address = ChipAddress.from_flat(chip_flat, geometry)

        def scan_valid() -> List[PhysicalPageAddress]:
            return [
                PhysicalPageAddress(
                    chip=chip_address,
                    die=die_index,
                    plane=plane_index,
                    block=victim_block,
                    page=page,
                )
                for page in range(block.write_pointer)
                if block.page_states[page] is PageState.VALID
            ]

        valid_pages = scan_valid()

        # (2) + (3): copy each valid page and repoint its mapping.
        for source_address in valid_pages:
            if block.page_states[source_address.page] is not PageState.VALID:
                continue  # overwritten by the host since the scan
            read = FlashTransaction(
                kind=TransactionKind.READ,
                addresses=[source_address],
                payload_bytes=page_size,
                source=TransactionSource.GC,
            )
            yield from self.pipeline.service(read)

            # Prefer migrating within the same plane (no cross-chip hop);
            # fall back to anywhere if the plane is exhausted.
            try:
                target = self.allocator.allocate_in_plane(plane_flat)
            except GarbageCollectionError:
                target = self._allocate_anywhere_for_gc()

            program = FlashTransaction(
                kind=TransactionKind.PROGRAM,
                addresses=[target],
                payload_bytes=page_size,
                source=TransactionSource.GC,
            )
            yield from self.pipeline.service(program)
            # Every GC program is internal write traffic, even a copy that
            # turns out stale below -- write amplification counts the cells
            # programmed, not the pages that stayed live.
            self.pages_written += 1

            old_ppn = source_address.page_flat_index(geometry)
            new_ppn = target.page_flat_index(geometry)
            if self.mapping.reverse_lookup(old_ppn) is None:
                # The host overwrote the logical page while its old copy was
                # mid-migration; our freshly programmed copy is garbage.
                self.array.block_for(target).invalidate_page(target.page)
            else:
                self.mapping.remap_physical(old_ppn, new_ppn)
                self.array.block_for(source_address).invalidate_page(
                    source_address.page
                )
                self.pages_migrated += 1

        if block.valid_count > 0:
            # Pages turned valid-relevant again under concurrent traffic;
            # leave the block for a later GC pass rather than looping here.
            return

        # (4): erase the victim so the allocator can reuse it.
        erase = FlashTransaction(
            kind=TransactionKind.ERASE,
            addresses=[
                PhysicalPageAddress(
                    chip=chip_address,
                    die=die_index,
                    plane=plane_index,
                    block=victim_block,
                    page=0,
                )
            ],
            payload_bytes=0,
            source=TransactionSource.GC,
        )
        yield from self.pipeline.service(erase)
        self.erases_issued += 1
