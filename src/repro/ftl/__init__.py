"""Flash Translation Layer (paper §2.2).

Page-level logical-to-physical mapping with out-of-place writes, dynamic
CWDP page allocation, greedy garbage collection, throttled wear leveling,
and a DRAM cache model.
"""

from repro.ftl.mapping import MappingTable
from repro.ftl.allocator import PageAllocator, AllocationStrategy
from repro.ftl.gc import GarbageCollector, GcPolicy
from repro.ftl.wear_leveling import WearLeveler
from repro.ftl.cache import DramCache
from repro.ftl.ftl import Ftl

__all__ = [
    "MappingTable",
    "PageAllocator",
    "AllocationStrategy",
    "GarbageCollector",
    "GcPolicy",
    "WearLeveler",
    "DramCache",
    "Ftl",
]
