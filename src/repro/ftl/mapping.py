"""Page-level logical-to-physical mapping table.

Out-of-place writes (§2.2): a host overwrite invalidates the old physical
page, programs a fresh one elsewhere, and repoints the logical page.  The
table maintains the forward map (LPN -> PPN) and the reverse map
(PPN -> LPN) that garbage collection needs to find the owners of valid
pages in a victim block.

PPNs are flat physical page indices (see
:meth:`repro.nand.address.PhysicalPageAddress.page_flat_index`).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.errors import MappingError


class MappingTable:
    """Bidirectional LPN <-> PPN map with consistency enforcement."""

    def __init__(self, total_logical_pages: int) -> None:
        if total_logical_pages < 1:
            raise MappingError("logical address space must be non-empty")
        self.total_logical_pages = total_logical_pages
        self._forward: Dict[int, int] = {}
        self._reverse: Dict[int, int] = {}
        self.updates = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ #

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.total_logical_pages:
            raise MappingError(
                f"LPN {lpn} outside logical space [0, {self.total_logical_pages})"
            )

    def lookup(self, lpn: int) -> Optional[int]:
        """Current PPN of a logical page, or None if unmapped."""
        self._check_lpn(lpn)
        return self._forward.get(lpn)

    def reverse_lookup(self, ppn: int) -> Optional[int]:
        """Owning LPN of a physical page, or None if the page is not live."""
        return self._reverse.get(ppn)

    def is_mapped(self, lpn: int) -> bool:
        """Whether a logical page currently has a physical location."""
        self._check_lpn(lpn)
        return lpn in self._forward

    # ------------------------------------------------------------------ #

    def map_page(self, lpn: int, ppn: int) -> Optional[int]:
        """Point ``lpn`` at ``ppn``; returns the displaced old PPN, if any.

        The caller is responsible for invalidating the displaced physical
        page in the NAND model -- the table only tracks the pointers.
        """
        self._check_lpn(lpn)
        if ppn in self._reverse:
            raise MappingError(
                f"PPN {ppn} already owned by LPN {self._reverse[ppn]}; "
                "physical pages are never shared"
            )
        old_ppn = self._forward.get(lpn)
        if old_ppn is not None:
            del self._reverse[old_ppn]
            self.invalidations += 1
        self._forward[lpn] = ppn
        self._reverse[ppn] = lpn
        self.updates += 1
        return old_ppn

    def unmap(self, lpn: int) -> Optional[int]:
        """Drop a logical page's mapping (trim); returns the freed PPN."""
        self._check_lpn(lpn)
        ppn = self._forward.pop(lpn, None)
        if ppn is not None:
            del self._reverse[ppn]
            self.invalidations += 1
        return ppn

    def remap_physical(self, old_ppn: int, new_ppn: int) -> int:
        """GC migration: move a live page's mapping to its new location."""
        lpn = self._reverse.get(old_ppn)
        if lpn is None:
            raise MappingError(f"PPN {old_ppn} holds no live page")
        if new_ppn in self._reverse:
            raise MappingError(f"migration target PPN {new_ppn} already live")
        del self._reverse[old_ppn]
        self._forward[lpn] = new_ppn
        self._reverse[new_ppn] = lpn
        self.updates += 1
        return lpn

    # ------------------------------------------------------------------ #

    @property
    def mapped_count(self) -> int:
        """Number of logical pages with a live physical mapping."""
        return len(self._forward)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate (lpn, ppn) pairs of every live mapping."""
        return iter(self._forward.items())

    def assert_bijective(self) -> None:
        """Invariant: forward and reverse maps mirror each other exactly."""
        if len(self._forward) != len(self._reverse):
            raise MappingError(
                f"map size mismatch: {len(self._forward)} forward vs "
                f"{len(self._reverse)} reverse"
            )
        for lpn, ppn in self._forward.items():
            if self._reverse.get(ppn) != lpn:
                raise MappingError(f"LPN {lpn} -> PPN {ppn} not mirrored")
