"""Wear leveling (paper §2.2).

Flash blocks endure a limited number of program/erase cycles, so the FTL
"distributes the writes evenly across all the flash blocks".  Two mechanisms
cooperate here:

* *dynamic* leveling is already built into the allocator and the GC victim
  policy (both prefer low-erase-count blocks),
* *static* leveling, implemented by :class:`WearLeveler`, watches the spread
  between the most- and least-worn blocks and, when it exceeds a threshold,
  schedules a swap: the coldest data (a block full of valid pages that has
  not been erased in a long time) is migrated onto the most-worn block's
  plane so the low-wear block re-enters circulation.

The leveler emits the same internal transactions as GC, so its traffic also
contends on the communication fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.controller.pipeline import TransactionPipeline
from repro.controller.transaction import (
    FlashTransaction,
    TransactionKind,
    TransactionSource,
)
from repro.errors import GarbageCollectionError
from repro.ftl.allocator import PageAllocator
from repro.ftl.mapping import MappingTable
from repro.nand.address import ChipAddress, PhysicalPageAddress
from repro.nand.array import FlashArray
from repro.nand.chip import PageState
from repro.sim.engine import Engine


@dataclass
class WearStats:
    """Erase-count distribution snapshot."""

    minimum: int
    maximum: int
    mean: float

    @property
    def spread(self) -> int:
        """Erase-count gap between the most- and least-worn blocks."""
        return self.maximum - self.minimum


class WearLeveler:
    """Static wear leveling via cold-block migration."""

    def __init__(
        self,
        engine: Engine,
        array: FlashArray,
        mapping: MappingTable,
        allocator: PageAllocator,
        pipeline: TransactionPipeline,
        *,
        spread_threshold: int = 8,
        enabled: bool = True,
    ) -> None:
        self.engine = engine
        self.array = array
        self.mapping = mapping
        self.allocator = allocator
        self.pipeline = pipeline
        self.spread_threshold = spread_threshold
        self.enabled = enabled
        self.migrations = 0
        self.swaps_triggered = 0
        self._active = False

    # ------------------------------------------------------------------ #

    def wear_stats(self) -> WearStats:
        """Snapshot the erase-count distribution across every block."""
        counts: List[int] = [
            block.erase_count
            for _, _, plane in self.array.iter_planes()
            for block in plane.blocks
        ]
        if not counts:
            return WearStats(0, 0, 0.0)
        return WearStats(min(counts), max(counts), sum(counts) / len(counts))

    def needs_leveling(self) -> bool:
        """Whether the wear spread exceeds the leveling threshold."""
        return self.enabled and self.wear_stats().spread > self.spread_threshold

    def maybe_trigger(self) -> bool:
        """Start one leveling pass if needed and none is already running."""
        if self._active or not self.needs_leveling():
            return False
        self._active = True
        self.engine.process(self._level(), name="wear-leveler")
        return True

    # ------------------------------------------------------------------ #

    def _find_cold_block(self) -> Optional[Tuple[int, int]]:
        """(plane_flat, block_index) of the coldest fully-valid block."""
        geometry = self.array.geometry
        best: Optional[Tuple[int, int]] = None
        best_erases: Optional[int] = None
        plane_flat = -1
        for chip, die, plane in self.array.iter_planes():
            plane_flat += 1
            for index, block in enumerate(plane.blocks):
                if block.valid_count != block.pages_per_block:
                    continue  # only fully-valid (cold, never rewritten) blocks
                if best_erases is None or block.erase_count < best_erases:
                    best = (plane_flat, index)
                    best_erases = block.erase_count
        del geometry
        return best

    def _level(self) -> Generator:
        """Migrate one cold block so its low-wear block becomes writable."""
        self.swaps_triggered += 1
        try:
            cold = self._find_cold_block()
            if cold is None:
                return
            plane_flat, block_index = cold
            geometry = self.array.geometry
            die_flat, plane_index = divmod(plane_flat, geometry.planes_per_die)
            chip_flat, die_index = divmod(die_flat, geometry.dies_per_chip)
            chip_address = ChipAddress.from_flat(chip_flat, geometry)
            plane = self.allocator.plane(plane_flat)
            block = plane.block(block_index)

            for page in range(block.write_pointer):
                if block.page_states[page] is not PageState.VALID:
                    continue
                source = PhysicalPageAddress(
                    chip=chip_address,
                    die=die_index,
                    plane=plane_index,
                    block=block_index,
                    page=page,
                )
                read = FlashTransaction(
                    kind=TransactionKind.READ,
                    addresses=[source],
                    payload_bytes=geometry.page_size,
                    source=TransactionSource.WEAR,
                )
                yield from self.pipeline.service(read)
                try:
                    target = self.allocator.allocate()
                except GarbageCollectionError:
                    return  # device too full to level right now
                program = FlashTransaction(
                    kind=TransactionKind.PROGRAM,
                    addresses=[target],
                    payload_bytes=geometry.page_size,
                    source=TransactionSource.WEAR,
                )
                yield from self.pipeline.service(program)
                self.mapping.remap_physical(
                    source.page_flat_index(geometry),
                    target.page_flat_index(geometry),
                )
                self.array.block_for(source).invalidate_page(page)
                self.migrations += 1

            erase = FlashTransaction(
                kind=TransactionKind.ERASE,
                addresses=[
                    PhysicalPageAddress(
                        chip=chip_address,
                        die=die_index,
                        plane=plane_index,
                        block=block_index,
                        page=0,
                    )
                ],
                payload_bytes=0,
                source=TransactionSource.WEAR,
            )
            yield from self.pipeline.service(erase)
        finally:
            self._active = False
