"""The FTL orchestrator: address translation and transaction generation.

Responsibilities (paper §2.2): logical-to-physical mapping with out-of-place
writes, garbage collection, wear leveling, and DRAM caching.  The FTL turns
host I/O requests (LBA ranges) into per-page flash transactions; the SSD
device layer services them over the communication fabric.

Reads to never-written logical pages are *implicitly preconditioned*: the
page is materialised at a striped physical location with zero simulated
cost, exactly as if a fill pass had run before the trace.  Real traces read
data written before the capture window began; without this, read-only traces
would read nothing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.ssd_config import SsdConfig
from repro.controller.transaction import (
    FlashTransaction,
    TransactionKind,
    TransactionSource,
)
from repro.errors import GarbageCollectionError, MappingError
from repro.ftl.allocator import AllocationStrategy, PageAllocator
from repro.ftl.cache import DramCache
from repro.ftl.mapping import MappingTable
from repro.nand.address import PhysicalPageAddress
from repro.nand.array import FlashArray
from repro.nand.chip import PageState
from repro.sim.rng import DeterministicRng


class Ftl:
    """Page-level FTL with dynamic CWDP allocation."""

    CLUSTER_BYTES = 1 << 20  # logical extent kept on one channel (see below)

    def __init__(
        self,
        config: SsdConfig,
        array: FlashArray,
        *,
        strategy: AllocationStrategy = AllocationStrategy.CWDP,
        cache: Optional[DramCache] = None,
        multi_plane_writes: bool = True,
    ) -> None:
        self.config = config
        self.array = array
        self.geometry = config.geometry
        usable = int(self.geometry.total_pages * (1.0 - config.over_provisioning))
        self.mapping = MappingTable(max(1, usable))
        self.allocator = PageAllocator(array, strategy=strategy, seed=config.seed)
        self.cache = cache if cache is not None else DramCache(0, enabled=False)
        self.multi_plane_writes = multi_plane_writes
        self.cluster_pages = max(1, self.CLUSTER_BYTES // self.geometry.page_size)
        self.host_reads = 0
        self.host_writes = 0
        self.cache_served_reads = 0
        self.implicit_preconditions = 0

    # ------------------------------------------------------------------ #
    # logical address helpers
    # ------------------------------------------------------------------ #

    @property
    def logical_pages(self) -> int:
        """Host-visible logical page count (physical minus over-provisioning)."""
        return self.mapping.total_logical_pages

    def lpn_of(self, byte_offset: int) -> int:
        """Map a host byte offset onto its logical page number."""
        return (byte_offset // self.geometry.page_size) % self.logical_pages

    def lpns_for(self, byte_offset: int, size_bytes: int) -> List[int]:
        """Logical pages touched by a [offset, offset+size) byte range."""
        if size_bytes <= 0:
            raise MappingError(f"request size must be positive: {size_bytes}")
        page_size = self.geometry.page_size
        first = byte_offset // page_size
        last = (byte_offset + size_bytes - 1) // page_size
        return [lpn % self.logical_pages for lpn in range(first, last + 1)]

    # ------------------------------------------------------------------ #
    # translation
    # ------------------------------------------------------------------ #

    def _materialise(self, lpn: int) -> int:
        """Implicit preconditioning: back an unread LPN with a real page.

        Placement follows the CWDP priority order at extent granularity:
        each ``CLUSTER_BYTES`` logical extent lives on one channel, striped
        page-by-page across that channel's ways.  This mirrors how a
        sequential fill pass lays data out under CWDP and is what makes a
        spatially-local read burst hit *different chips of the same
        channel* -- the canonical path-conflict pattern of Figure 3.
        """
        geometry = self.geometry
        ways = geometry.chips_per_channel
        channel = (lpn // self.cluster_pages) % geometry.channels
        way = lpn % ways
        chip_flat = channel * ways + way
        planes_per_chip = geometry.dies_per_chip * geometry.planes_per_die
        plane_in_chip = (lpn // ways) % planes_per_chip
        plane_flat = chip_flat * planes_per_chip + plane_in_chip
        try:
            address = self.allocator.allocate_in_plane(plane_flat)
        except GarbageCollectionError:
            address = self.allocator.allocate()
        self.array.block_for(address).program_page(address.page)
        ppn = address.page_flat_index(self.geometry)
        self.mapping.map_page(lpn, ppn)
        self.implicit_preconditions += 1
        return ppn

    def translate_read(self, byte_offset: int, size_bytes: int) -> List[FlashTransaction]:
        """Host read -> one READ transaction per (uncached) logical page."""
        transactions: List[FlashTransaction] = []
        page_size = self.geometry.page_size
        for lpn in self.lpns_for(byte_offset, size_bytes):
            self.host_reads += 1
            if self.cache.lookup_read(lpn):
                self.cache_served_reads += 1
                continue
            ppn = self.mapping.lookup(lpn)
            if ppn is None:
                ppn = self._materialise(lpn)
            address = PhysicalPageAddress.from_page_flat(ppn, self.geometry)
            transactions.append(
                FlashTransaction(
                    kind=TransactionKind.READ,
                    addresses=[address],
                    payload_bytes=page_size,
                    source=TransactionSource.HOST,
                )
            )
            self.cache.fill(lpn)
        return transactions

    def translate_write(self, byte_offset: int, size_bytes: int) -> List[FlashTransaction]:
        """Host write -> PROGRAM transactions (out-of-place allocation).

        When ``multi_plane_writes`` is on and a request spans several pages,
        the allocator tries to hand out same-offset plane pairs so a single
        multi-plane PROGRAM covers them (§2.1).
        """
        lpns = self.lpns_for(byte_offset, size_bytes)
        for lpn in lpns:
            self.host_writes += 1
            self.cache.lookup_write(lpn)
        transactions: List[FlashTransaction] = []
        page_size = self.geometry.page_size
        index = 0
        planes_per_die = self.geometry.planes_per_die
        while index < len(lpns):
            remaining = len(lpns) - index
            want = min(remaining, planes_per_die) if self.multi_plane_writes else 1
            if want > 1:
                addresses = self.allocator.allocate_multi_plane(want)
            else:
                addresses = [self.allocator.allocate()]
            group = lpns[index : index + len(addresses)]
            for lpn, address in zip(group, addresses):
                ppn = address.page_flat_index(self.geometry)
                old_ppn = self.mapping.map_page(lpn, ppn)
                if old_ppn is not None:
                    old_address = PhysicalPageAddress.from_page_flat(
                        old_ppn, self.geometry
                    )
                    self.array.block_for(old_address).invalidate_page(old_address.page)
            transactions.append(
                FlashTransaction(
                    kind=TransactionKind.PROGRAM,
                    addresses=addresses,
                    payload_bytes=page_size * len(addresses),
                    source=TransactionSource.HOST,
                )
            )
            index += len(addresses)
        return transactions

    # ------------------------------------------------------------------ #
    # maintenance hooks
    # ------------------------------------------------------------------ #

    def planes_touched_by(self, transactions: List[FlashTransaction]) -> List[int]:
        """Flat plane indices written by a transaction batch (GC triggers)."""
        planes = set()
        for transaction in transactions:
            if transaction.kind is not TransactionKind.PROGRAM:
                continue
            for address in transaction.addresses:
                planes.add(address.plane_flat_index(self.geometry))
        return sorted(planes)

    def precondition(self, fill_fraction: float, seed: Optional[int] = None) -> int:
        """Fill a fraction of the logical space with valid data, timing-free.

        Returns the number of pages written.  Used before write-heavy runs
        so garbage collection behaves as on an aged device.
        """
        if not 0.0 <= fill_fraction <= 1.0:
            raise MappingError(f"fill fraction out of [0,1]: {fill_fraction}")
        target = int(self.logical_pages * fill_fraction)
        written = 0
        for lpn in range(target):
            if self.mapping.is_mapped(lpn):
                continue
            self._materialise(lpn)
            written += 1
        return written

    def churn(self, churn_fraction: float, seed: Optional[int] = None) -> int:
        """Overwrite a fraction of the mapped logical pages, timing-free.

        The sustained-write aging stage: a deterministic shuffle of the
        mapped LPNs picks ``churn_fraction`` of them for out-of-place
        rewrite, which spreads invalid pages across closed blocks exactly
        as a long random-write history would -- the state garbage
        collection needs to have victims.  When free space runs low the
        rewrite loop compacts synchronously (:meth:`_compact_timing_free`),
        so a high-fill churn converges to GC steady state instead of
        deadlocking on a fully-allocated array.  Returns the number of
        pages rewritten.
        """
        if not 0.0 <= churn_fraction <= 1.0:
            raise MappingError(
                f"churn fraction out of [0,1]: {churn_fraction}"
            )
        lpns = sorted(lpn for lpn, _ in self.mapping.items())
        target = int(len(lpns) * churn_fraction)
        if target == 0:
            return 0
        rng = DeterministicRng(
            self.config.seed if seed is None else seed, stream="churn"
        )
        rng.shuffle(lpns)
        geometry = self.geometry
        # Keep enough free pages that a compaction victim's valid pages
        # always fit somewhere; recomputed only after compaction because a
        # rewrite consumes exactly one free page.
        slack = 2 * geometry.pages_per_block
        free = round(self.allocator.free_page_fraction() * geometry.total_pages)
        written = 0
        for lpn in lpns[:target]:
            if free < slack:
                while free < slack and self._compact_timing_free():
                    free = round(
                        self.allocator.free_page_fraction()
                        * geometry.total_pages
                    )
            self._rewrite_timing_free(lpn)
            free -= 1
            written += 1
        # Leave the device GC-safe: keep compacting until every plane
        # retains its erased-block reserve (or no further progress is
        # possible), so measured-phase garbage collection always has a
        # migration target -- without this, a high-fill churn can strand
        # the array with zero erased blocks and deadlock forced GC.
        reserve = self.allocator.gc_reserved_blocks
        while any(
            self.allocator.erased_block_count(plane_flat) < reserve
            for plane_flat in range(self.allocator.plane_count())
        ):
            if not self._compact_timing_free():
                break
        return written

    def _rewrite_timing_free(self, lpn: int) -> None:
        """Out-of-place rewrite of one mapped LPN with zero simulated cost."""
        try:
            address = self.allocator.allocate()
        except GarbageCollectionError:
            if not self._compact_timing_free():
                raise
            address = self.allocator.allocate()
        self.array.block_for(address).program_page(address.page)
        old_ppn = self.mapping.map_page(
            lpn, address.page_flat_index(self.geometry)
        )
        if old_ppn is not None:
            old_address = PhysicalPageAddress.from_page_flat(
                old_ppn, self.geometry
            )
            self.array.block_for(old_address).invalidate_page(old_address.page)

    def _compact_timing_free(self) -> int:
        """One synchronous compaction pass over all planes, timing-free.

        The churn-stage analogue of :class:`~repro.ftl.gc.GarbageCollector`:
        per plane, pick the closed block with the fewest valid pages (ties
        to lower erase count), migrate its valid pages (same plane first,
        any plane as fallback -- GC-path allocations may dip into the
        erased-block reserve), and erase it.  Returns the number of blocks
        reclaimed; zero means every closed block is fully valid and no
        space can be recovered.
        """
        reclaimed = 0
        for plane_flat in range(self.allocator.plane_count()):
            plane = self.allocator.plane(plane_flat)
            open_block = self.allocator.open_block_of(plane_flat)
            victim_index = None
            victim_key = None
            for index, block in enumerate(plane.blocks):
                if index == open_block or block.is_erased:
                    continue
                if block.valid_count == block.pages_per_block:
                    continue  # nothing to reclaim
                key = (block.valid_count, block.erase_count)
                if victim_key is None or key < victim_key:
                    victim_index, victim_key = index, key
            if victim_index is None:
                continue
            victim = plane.block(victim_index)
            migrated_all = True
            for page in range(victim.write_pointer):
                if victim.read_page(page) is not PageState.VALID:
                    continue
                try:
                    target = self.allocator.allocate_in_plane(plane_flat)
                except GarbageCollectionError:
                    target = self._allocate_anywhere_timing_free(plane_flat)
                if target is None:
                    migrated_all = False
                    break
                self.array.block_for(target).program_page(target.page)
                old_address = self.allocator.address_of(
                    plane_flat, victim_index, page
                )
                old_ppn = old_address.page_flat_index(self.geometry)
                self.mapping.remap_physical(
                    old_ppn, target.page_flat_index(self.geometry)
                )
                victim.invalidate_page(page)
            if migrated_all and victim.valid_count == 0:
                victim.erase()
                reclaimed += 1
        return reclaimed

    def _allocate_anywhere_timing_free(self, skip_plane: int):
        """GC-path allocation in any plane but ``skip_plane`` (or None)."""
        for plane_flat in range(self.allocator.plane_count()):
            if plane_flat == skip_plane:
                continue
            try:
                return self.allocator.allocate_in_plane(plane_flat)
            except GarbageCollectionError:
                continue
        return None

    def assert_consistent(self) -> None:
        """Cross-check mapping and NAND state (used by property tests)."""
        self.mapping.assert_bijective()
        live = self.array.total_valid_pages()
        mapped = self.mapping.mapped_count
        if live != mapped:
            raise MappingError(
                f"NAND holds {live} valid pages but mapping tracks {mapped}"
            )
