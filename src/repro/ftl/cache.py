"""In-SSD DRAM cache model (paper §2.2).

The SSD controller's DRAM caches "frequently accessed data (e.g., the
logical-to-physical page mapping table) or frequently-requested pages".
The model is a byte-budgeted LRU over logical pages with separate read-hit
and write-hit accounting, plus a pinned region representing the mapping
table (always resident in the evaluated device class, so map lookups cost
no flash access).

The cache defaults to *disabled* in experiment runs: the paper's evaluation
measures fabric behaviour, and a data cache in front would absorb part of
the traffic the figures characterise.  It is fully functional and tested.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigurationError


class DramCache:
    """LRU data cache over logical page numbers."""

    def __init__(
        self,
        capacity_pages: int,
        *,
        write_allocate: bool = True,
        enabled: bool = True,
    ) -> None:
        if capacity_pages < 0:
            raise ConfigurationError("cache capacity must be >= 0")
        self.capacity_pages = capacity_pages
        self.write_allocate = write_allocate
        self.enabled = enabled and capacity_pages > 0
        self._lru: "OrderedDict[int, bool]" = OrderedDict()  # lpn -> dirty
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.evictions = 0
        self.writebacks = 0

    # ------------------------------------------------------------------ #

    def lookup_read(self, lpn: int) -> bool:
        """True if the read is served from DRAM (no flash access needed)."""
        if not self.enabled:
            return False
        if lpn in self._lru:
            self._lru.move_to_end(lpn)
            self.read_hits += 1
            return True
        self.read_misses += 1
        return False

    def fill(self, lpn: int) -> Optional[int]:
        """Insert a clean line after a read miss; returns an evicted dirty
        LPN that must be written back, if any."""
        if not self.enabled:
            return None
        return self._insert(lpn, dirty=False)

    def lookup_write(self, lpn: int) -> bool:
        """Record a host write; True if it hit (absorbed in DRAM)."""
        if not self.enabled:
            return False
        if lpn in self._lru:
            self._lru.move_to_end(lpn)
            self._lru[lpn] = True
            self.write_hits += 1
            return True
        self.write_misses += 1
        if self.write_allocate:
            self._insert(lpn, dirty=True)
        return False

    def _insert(self, lpn: int, dirty: bool) -> Optional[int]:
        evicted_dirty: Optional[int] = None
        if lpn in self._lru:
            self._lru.move_to_end(lpn)
            self._lru[lpn] = self._lru[lpn] or dirty
            return None
        while len(self._lru) >= self.capacity_pages:
            victim, was_dirty = self._lru.popitem(last=False)
            self.evictions += 1
            if was_dirty:
                self.writebacks += 1
                evicted_dirty = victim
        self._lru[lpn] = dirty
        return evicted_dirty

    def invalidate(self, lpn: int) -> None:
        """Drop a logical page from the cache (trim / discard path)."""
        self._lru.pop(lpn, None)

    def flush(self) -> int:
        """Drop everything; returns how many dirty lines needed writeback."""
        dirty = sum(1 for is_dirty in self._lru.values() if is_dirty)
        self.writebacks += dirty
        self._lru.clear()
        return dirty

    # ------------------------------------------------------------------ #

    @property
    def occupancy(self) -> int:
        """Number of logical pages currently resident."""
        return len(self._lru)

    @property
    def read_hit_rate(self) -> float:
        """Fraction of reads served from DRAM (0.0 before any read)."""
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    @property
    def write_hit_rate(self) -> float:
        """Fraction of writes absorbed by DRAM (0.0 before any write)."""
        total = self.write_hits + self.write_misses
        return self.write_hits / total if total else 0.0
