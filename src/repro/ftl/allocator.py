"""Dynamic page allocation across the flash array.

The allocator decides *where* each new page lands, which determines how much
chip-level parallelism a workload can exploit (§7 "Exploiting Flash Array
Parallelism").  The default strategy is the CWDP order MQSim uses: stripe
consecutive allocations across Channels, then Ways, then Dies, then Planes,
so sequential writes fan out over the whole array.

Each plane keeps one *open block*; allocations within the plane fill that
block page by page (NAND requires in-order programming within a block) and a
fresh block is opened when it fills.  Blocks are recycled by the garbage
collector via :meth:`PageAllocator.free_block_count` / erases in the NAND
model -- the allocator simply skips blocks that are not fully erased.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.config.ssd_config import NandGeometry
from repro.errors import GarbageCollectionError, MappingError
from repro.nand.address import ChipAddress, PhysicalPageAddress
from repro.nand.array import FlashArray
from repro.nand.chip import FlashPlane, PageState
from repro.sim.rng import DeterministicRng


class AllocationStrategy(enum.Enum):
    """Striping orders studied by prior page-allocation work [39, 14]."""

    CWDP = "cwdp"  # channel -> way -> die -> plane (MQSim default)
    WCDP = "wcdp"  # way -> channel -> die -> plane
    RANDOM = "random"  # uniform random plane choice


class _PlaneCursor:
    """Open-block write cursor of one plane.

    The cursor's position in the array is fixed, so its address components
    (chip, die index, plane index) are resolved once at construction -- the
    allocation hot path only fills in block and page.
    """

    __slots__ = ("plane", "open_block", "plane_flat", "chip", "die", "plane_index")

    def __init__(
        self, plane: FlashPlane, plane_flat: int, geometry: NandGeometry
    ) -> None:
        self.plane = plane
        self.open_block: Optional[int] = None
        self.plane_flat = plane_flat
        die_flat, self.plane_index = divmod(plane_flat, geometry.planes_per_die)
        chip_flat, self.die = divmod(die_flat, geometry.dies_per_chip)
        self.chip = ChipAddress.from_flat(chip_flat, geometry)


class PageAllocator:
    """Round-robin (or random) plane selection with per-plane open blocks."""

    def __init__(
        self,
        array: FlashArray,
        strategy: AllocationStrategy = AllocationStrategy.CWDP,
        seed: int = 42,
        gc_reserved_blocks: int = 1,
    ) -> None:
        self.array = array
        self.geometry: NandGeometry = array.geometry
        self.strategy = strategy
        self._rng = DeterministicRng(seed, stream="allocator")
        self.gc_reserved_blocks = max(0, gc_reserved_blocks)
        self._cursors: List[_PlaneCursor] = []
        self._plane_order: List[int] = []
        self._next_plane = 0
        self.allocations = 0
        self._build_cursors()

    # ------------------------------------------------------------------ #

    def _build_cursors(self) -> None:
        geometry = self.geometry
        by_flat: Dict[int, _PlaneCursor] = {}
        for chip in self.array.chips:
            for die in chip.dies:
                for plane in die.planes:
                    flat = (
                        (chip.flat_index * geometry.dies_per_chip + die.index)
                        * geometry.planes_per_die
                        + plane.index
                    )
                    by_flat[flat] = _PlaneCursor(plane, flat, geometry)
        self._cursors = [by_flat[flat] for flat in sorted(by_flat)]
        self._plane_order = self._striping_order()
        # Cursor groups per die, for multi-plane probing (fixed geometry).
        planes_per_die = geometry.planes_per_die
        self._die_groups: List[Tuple[_PlaneCursor, ...]] = [
            tuple(self._cursors[start : start + planes_per_die])
            for start in range(0, len(self._cursors), planes_per_die)
        ]

    def _striping_order(self) -> List[int]:
        """Flat plane indices in the strategy's striping order.

        CWDP is the priority order Channel > Way > Die > Plane: a logically
        contiguous range first fills the ways of one channel (way varies
        fastest), then moves to the next channel.  Contiguous hot ranges
        therefore cluster on a channel -- which is precisely the path
        conflict the paper studies: concurrent requests hitting *different
        chips of the same channel* serialise on the shared bus (Figure 3)
        while chip-level parallelism goes unused.  WCDP inverts the first
        two levels (channel varies fastest), spreading contiguous ranges
        across channels; it is provided for the allocation-strategy
        ablation (prior work [39, 14] studies exactly this trade-off).
        """
        geometry = self.geometry
        order: List[int] = []
        if self.strategy is AllocationStrategy.WCDP:
            for plane in range(geometry.planes_per_die):
                for die in range(geometry.dies_per_chip):
                    for way in range(geometry.chips_per_channel):
                        for channel in range(geometry.channels):
                            chip_flat = ChipAddress(channel, way).flat_index(geometry)
                            order.append(
                                (chip_flat * geometry.dies_per_chip + die)
                                * geometry.planes_per_die
                                + plane
                            )
            return order
        # CWDP (also the base order RANDOM samples from)
        for plane in range(geometry.planes_per_die):
            for die in range(geometry.dies_per_chip):
                for channel in range(geometry.channels):
                    for way in range(geometry.chips_per_channel):
                        chip_flat = ChipAddress(channel, way).flat_index(geometry)
                        order.append(
                            (chip_flat * geometry.dies_per_chip + die)
                            * geometry.planes_per_die
                            + plane
                        )
        return order

    # ------------------------------------------------------------------ #

    def _open_block(
        self, cursor: _PlaneCursor, for_gc: bool = False
    ) -> Optional[int]:
        """Current or fresh open block of a plane; None if plane exhausted.

        ``gc_reserved_blocks`` erased blocks per plane are withheld from
        host allocations so garbage collection always has somewhere to
        migrate valid pages -- without the reserve, a full device deadlocks
        (GC needs free pages to free pages).
        """
        if cursor.open_block is not None:
            block = cursor.plane.block(cursor.open_block)
            if not block.is_full:
                return cursor.open_block
            cursor.open_block = None
        # Open the erased block with the lowest erase count (cheap static
        # wear leveling; see repro.ftl.wear_leveling for the active policy).
        erased = [
            (block.erase_count, index)
            for index, block in enumerate(cursor.plane.blocks)
            if block.is_erased
        ]
        if not erased:
            return None
        if not for_gc and len(erased) <= self.gc_reserved_blocks:
            return None  # only the GC reserve remains
        erased.sort()
        cursor.open_block = erased[0][1]
        return cursor.open_block

    def _peek_address(
        self, cursor: _PlaneCursor, for_gc: bool = False
    ) -> Optional[PhysicalPageAddress]:
        """Next address the plane would hand out, without reserving it."""
        block_index = self._open_block(cursor, for_gc=for_gc)
        if block_index is None:
            return None
        block = cursor.plane.block(block_index)
        return PhysicalPageAddress(
            chip=cursor.chip,
            die=cursor.die,
            plane=cursor.plane_index,
            block=block_index,
            page=block.allocation_pointer,
        )

    def _take_address(
        self, cursor: _PlaneCursor, for_gc: bool = False
    ) -> Optional[PhysicalPageAddress]:
        """Reserve and return the plane's next free page address."""
        address = self._peek_address(cursor, for_gc=for_gc)
        if address is None:
            return None
        block = cursor.plane.block(address.block)
        reserved_page = block.reserve_next_page()
        assert reserved_page == address.page
        return address

    def allocate(self) -> PhysicalPageAddress:
        """Next physical page address in striping order.

        The returned page is *not* yet programmed -- the caller issues the
        PROGRAM transaction (or marks state directly when preconditioning).
        """
        attempts = 0
        total = len(self._cursors)
        while attempts < total:
            if self.strategy is AllocationStrategy.RANDOM:
                position = self._rng.randint(0, total - 1)
            else:
                position = self._next_plane
                self._next_plane = (self._next_plane + 1) % total
            cursor = self._cursors[self._plane_order[position]]
            address = self._take_address(cursor)
            attempts += 1
            if address is not None:
                self.allocations += 1
                return address
        raise GarbageCollectionError(
            "no free page anywhere: garbage collection cannot keep up "
            "(device written beyond its over-provisioned capacity)"
        )

    def allocate_in_plane(
        self, plane_flat: int, for_gc: bool = True
    ) -> PhysicalPageAddress:
        """Allocate specifically in one plane (GC migrates within a plane
        by default to avoid cross-chip traffic during collection).

        GC-path allocations may dip into the reserved erased blocks.
        """
        if not 0 <= plane_flat < len(self._cursors):
            raise MappingError(f"plane index {plane_flat} out of range")
        address = self._take_address(self._cursors[plane_flat], for_gc=for_gc)
        if address is None:
            raise GarbageCollectionError(f"plane {plane_flat} has no free page")
        self.allocations += 1
        return address

    def allocate_multi_plane(self, count: int) -> List[PhysicalPageAddress]:
        """Allocate ``count`` same-offset pages across planes of one die.

        Enables multi-plane programs (§2.1).  Falls back to fewer addresses
        (possibly one) when no die has enough aligned free planes; callers
        must check the returned length.
        """
        if count < 1:
            raise MappingError("multi-plane count must be >= 1")
        count = min(count, self.geometry.planes_per_die)
        total = len(self._cursors)
        planes_per_die = self.geometry.planes_per_die
        start_die = (self._next_plane // planes_per_die) if planes_per_die else 0
        die_count = total // planes_per_die
        for offset in range(die_count):
            die_flat = (start_die + offset) % die_count
            cursors = self._die_groups[die_flat]
            peeked = []
            for cursor in cursors[:count]:
                address = self._peek_address(cursor)
                if address is None:
                    break
                peeked.append((cursor, address))
            if len(peeked) == count and len(
                {(address.block, address.page) for _, address in peeked}
            ) == 1:
                # Reserve the already-peeked pages directly: the cursors are
                # distinct planes, so no take can invalidate another's peek.
                addresses = []
                for cursor, address in peeked:
                    block = cursor.plane.block(address.block)
                    reserved_page = block.reserve_next_page()
                    assert reserved_page == address.page
                    addresses.append(address)
                self._next_plane = ((die_flat + 1) * planes_per_die) % total
                self.allocations += count
                return addresses
        return [self.allocate()]

    # ------------------------------------------------------------------ #

    def free_page_fraction(self, plane_flat: Optional[int] = None) -> float:
        """Free fraction of one plane (or the whole device)."""
        if plane_flat is None:
            total = sum(cursor.plane.total_pages for cursor in self._cursors)
            free = sum(cursor.plane.free_pages for cursor in self._cursors)
        else:
            plane = self._cursors[plane_flat].plane
            total, free = plane.total_pages, plane.free_pages
        return free / total if total else 0.0

    def plane_count(self) -> int:
        """Number of planes (flat plane indices run [0, plane_count))."""
        return len(self._cursors)

    def plane(self, plane_flat: int) -> FlashPlane:
        """The :class:`~repro.nand.chip.FlashPlane` at a flat plane index."""
        return self._cursors[plane_flat].plane

    def open_block_of(self, plane_flat: int) -> Optional[int]:
        """The plane's current open-block index (None when none is open)."""
        return self._cursors[plane_flat].open_block

    def erased_block_count(self, plane_flat: int) -> int:
        """How many of the plane's blocks are currently erased."""
        plane = self._cursors[plane_flat].plane
        return sum(1 for block in plane.blocks if block.is_erased)

    def address_of(
        self, plane_flat: int, block: int, page: int
    ) -> PhysicalPageAddress:
        """The full physical address of (plane, block, page).

        The chip/die/plane components are resolved from the plane's cursor,
        which fixed them at construction -- used by maintenance paths (GC,
        churn compaction) that walk planes by flat index.
        """
        cursor = self._cursors[plane_flat]
        return PhysicalPageAddress(
            chip=cursor.chip,
            die=cursor.die,
            plane=cursor.plane_index,
            block=block,
            page=page,
        )
