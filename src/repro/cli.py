"""Command-line front end: ``python -m repro`` / ``venice-sim``.

Subcommands:

* ``run``     -- one workload on one design, print the run metrics,
* ``compare`` -- one workload across all designs, print the speedup table,
* ``figure``  -- regenerate a paper figure (fig4, fig9a, fig9b, fig10,
  fig11, fig12, fig13, fig14, fig15, table4),
* ``matrix``  -- regenerate every figure from one deduplicated spec pass,
* ``bench``   -- core perf micro-benchmarks, written to ``BENCH_core.json``
  (``--baseline`` compares against a stored payload and exits 3 on >20%
  throughput regression),
* ``trace``   -- work with real trace files: ``inspect`` (detect format,
  summarize, digest), ``replay`` (run a file on a design, cache-aware),
  ``convert`` (rewrite any supported format as canonical venice CSV),
* ``faults``  -- fault injection (docs/faults.md): ``sweep`` runs the
  throughput/p99-vs-failed-links degradation curve across the five real
  fabrics, ``check`` parses a schedule and echoes its canonical form,
* ``ftl``     -- sustained-write realism (docs/ftl.md): ``sweep`` charts
  the write cliff (throughput/p99/GC stall time vs preconditioned fill),
  write amplification vs over-provisioning, and the GC x faults
  composition cell across the five fabrics; warm-ups (``fill F; churn
  C``) are checkpointed and shared between cells,
* ``fleet``   -- multi-SSD arrays behind a host dispatcher (docs/fleet.md):
  ``run`` simulates one fleet (mixed designs allowed, tenant traffic
  fan-out, pluggable placement) and prints the roll-up, ``sweep`` charts
  throughput/p99 versus device count and placement policy; ``--sample K``
  simulates K stratified representatives and extrapolates with
  confidence intervals; ``--qos POLICY`` applies a dispatcher QoS policy
  and ``--burst TxF`` an adversarial burst clause,
* ``qos``     -- multi-tenant isolation (docs/qos.md): ``sweep`` charts
  the victim tenants' p99 versus an adversarial tenant's offered-load
  multiplier across the five fabrics, the placement policies, and the
  dispatcher QoS policies (none, fair-share token bucket, weighted fair
  queueing, SLO-aware admission control),
* ``store``   -- result-store maintenance: ``stats`` reports entry and
  checkpoint counts, byte totals, and session cache counters; ``verify``
  checks every entry's content hash against its digest key (``--repair``
  quarantines mismatches); ``gc`` drops quarantined entries and stale
  temp files; ``compact`` minifies JSON entries / VACUUMs the sqlite
  backend,
* ``worker``  -- drain a crash-safe work queue (docs/distributed.md):
  lease tasks by spec digest, heartbeat while simulating, write results
  into the queue's bound store, retry with exponential backoff,
* ``queue``   -- work-queue observability: ``status`` (task-state
  counts), ``dead`` (dead-lettered tasks with captured tracebacks),
* ``list``    -- enumerate workloads, mixes, designs, presets, formats,
  placements, store backends.

``figure|matrix|faults sweep|fleet sweep --queue DIR`` run their spec
batch through the work queue instead of an in-process executor: the sweep
enqueues, participates, and waits, while any number of ``venice-sim
worker --queue DIR`` processes -- on this or other hosts sharing the
directory -- share the load.  A sweep whose workers are killed mid-run
completes on re-run with zero lost and zero duplicated simulations.
``--timeout SECONDS`` bounds each simulation's wall clock everywhere;
``--store-backend flat|sharded|sqlite`` picks the result-store layout.

``figure --faults SCHEDULE`` regenerates any figure on a degraded fabric
(the same schedule applied to every run).  ``figure --warmup SPEC
--early-stop SPEC`` (also on ``matrix``) turn on the sweep-throughput
amortizations of docs/performance.md: checkpointed warm-up shared across
the figure's cells and steady-state early-stop of each measured phase.

``figure --trace FILE …`` replays real trace files in place of the
figure's workload set (fig11 tail latencies and fig12 multi-tenant runs
are the paper's trace-sensitive figures); catalog workload names resolve
to real traces automatically when ``VENICE_TRACE_DIR`` points at an
archive directory.

``--jobs N`` runs the simulations of a figure/matrix in parallel worker
processes; ``--cache DIR`` persists results content-addressed by run spec so
repeat invocations simulate nothing that is already on disk.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.config.presets import PRESET_NAMES
from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError, ReproError
from repro.experiments import figures
from repro.experiments.executor import execute_specs, make_executor
from repro.experiments.reporting import format_table, speedup_table
from repro.experiments.runner import ExperimentScale, make_spec, run_suite
from repro.experiments.spec import TRACE_WORKLOAD_PREFIX
from repro.experiments.store import BACKEND_NAMES, ResultStore
from repro.ssd.factory import design_names
from repro.workloads import formats as trace_formats
from repro.workloads.catalog import workload_names
from repro.workloads.mixes import mix_names


def _add_amortization_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--warmup",
        default=None,
        metavar="SPEC",
        help="checkpointed warm-up shared by every cell, e.g. "
        "'fill 0.8; steps 2000' (docs/performance.md)",
    )
    parser.add_argument(
        "--early-stop",
        default=None,
        metavar="SPEC",
        help="steady-state early-stop of the measured phase, e.g. "
        "'window 60; tolerance 0.03; patience 2; min 240'",
    )


def _add_orchestration_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="simulate up to N runs in parallel worker processes",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="content-addressed result store; repeat runs are read from it",
    )
    parser.add_argument(
        "--store-backend",
        choices=("auto",) + BACKEND_NAMES,
        default="auto",
        help="result-store layout (auto detects an existing store; new "
        "stores default to flat)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock limit; a hung simulation is killed and "
        "reported without stalling the rest of the batch",
    )
    parser.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help="run through a crash-safe work queue in DIR: enqueue, "
        "participate, and wait; external `venice-sim worker --queue DIR` "
        "processes share the load (docs/distributed.md)",
    )
    parser.add_argument(
        "--lease",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="worker lease length when creating a new queue (default 30)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts before a queued task dead-letters (new queues only, "
        "default 3)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="venice-sim",
        description="Venice (ISCA 2023) SSD simulator reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload on one design")
    run.add_argument("--design", default="venice", choices=design_names())
    run.add_argument("--workload", default="hm_0")
    run.add_argument("--preset", default="performance-optimized")
    run.add_argument("--requests", type=int, default=1200)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--json", action="store_true", help="emit JSON")
    run.add_argument(
        "--cache", default=None, metavar="DIR", help="result store directory"
    )
    run.add_argument(
        "--wear-leveling",
        action="store_true",
        help="enable erase-count wear leveling (digest-joining knob; "
        "absent leaves the spec byte-identical)",
    )
    run.add_argument(
        "--over-provisioning",
        type=float,
        default=None,
        metavar="FRACTION",
        help="spare-area fraction override, e.g. 0.2 (digest-joining knob)",
    )
    run.add_argument(
        "--gc-threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="free-page fraction that starts GC (digest-joining knob)",
    )
    run.add_argument(
        "--gc-stop",
        type=float,
        default=None,
        metavar="FRACTION",
        help="free-page fraction at which GC stops (digest-joining knob)",
    )

    compare = sub.add_parser("compare", help="one workload across all designs")
    compare.add_argument("--workload", default="hm_0")
    compare.add_argument("--preset", default="performance-optimized")
    compare.add_argument("--requests", type=int, default=1200)
    compare.add_argument("--seed", type=int, default=42)
    _add_orchestration_flags(compare)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", choices=sorted(figures.FIGURES))
    figure.add_argument("--requests", type=int, default=600)
    figure.add_argument("--seed", type=int, default=42)
    figure.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="subset of Table 2 traces (fig12: Table 3 mix names)",
    )
    figure.add_argument(
        "--trace",
        nargs="*",
        default=None,
        metavar="FILE",
        help="replay real trace files as the figure's workload set "
        "(MSR CSV, fio log, blkparse, venice CSV; .gz accepted)",
    )
    figure.add_argument(
        "--faults",
        default=None,
        metavar="SCHEDULE",
        help="fault schedule applied to every run of the figure "
        "(grammar: docs/faults.md, e.g. '0 link (0,3)-(0,4) down')",
    )
    _add_amortization_flags(figure)
    figure.add_argument("--json", action="store_true")
    _add_orchestration_flags(figure)

    matrix = sub.add_parser(
        "matrix", help="regenerate every figure in one shared pass"
    )
    matrix.add_argument("--requests", type=int, default=600)
    matrix.add_argument("--seed", type=int, default=42)
    matrix.add_argument(
        "--figures",
        nargs="*",
        default=None,
        metavar="NAME",
        choices=sorted(figures.FIGURES),
        help="subset of figures to regenerate (default: all)",
    )
    matrix.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="override the Table 2 trace set of the trace figures",
    )
    matrix.add_argument(
        "--mixes", nargs="*", default=None, help="override fig12's mix list"
    )
    _add_amortization_flags(matrix)
    matrix.add_argument("--json", action="store_true")
    _add_orchestration_flags(matrix)

    bench = sub.add_parser(
        "bench", help="run the core perf micro-benchmarks (BENCH_core.json)"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes for CI smoke runs",
    )
    bench.add_argument(
        "--speedup",
        action="store_true",
        help="also measure the fig9a/10/13/14 sweep cost, exact vs "
        "checkpointed+early-stopped (docs/performance.md)",
    )
    bench.add_argument(
        "--out",
        default="BENCH_core.json",
        metavar="PATH",
        help="where to write the benchmark payload (default: BENCH_core.json)",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline payload to compare against; exit 3 on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        metavar="FRACTION",
        help="allowed fractional regression vs the baseline (default 0.20)",
    )
    bench.add_argument("--json", action="store_true", help="print the payload")

    trace = sub.add_parser(
        "trace", help="inspect, replay, or convert real trace files"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    inspect = trace_sub.add_parser(
        "inspect", help="detect format, summarize, and digest a trace file"
    )
    inspect.add_argument("path")
    inspect.add_argument(
        "--format",
        dest="trace_format",
        choices=trace_formats.format_names(),
        default=None,
        help="parse as this format instead of auto-detecting",
    )
    inspect.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="summarize only the first N records",
    )
    inspect.add_argument("--json", action="store_true")

    replay = trace_sub.add_parser(
        "replay", help="replay a trace file on one design (cache-aware)"
    )
    replay.add_argument("path")
    replay.add_argument("--design", default="venice", choices=design_names())
    replay.add_argument("--preset", default="performance-optimized")
    replay.add_argument("--requests", type=int, default=1200)
    replay.add_argument("--seed", type=int, default=42)
    replay.add_argument(
        "--time-scale", type=float, default=None, metavar="FACTOR",
        help="multiply inter-arrival gaps (<1 compresses the trace)",
    )
    replay.add_argument(
        "--lba-policy", choices=("wrap", "scale"), default=None,
        help="how recorded offsets are fitted into the device footprint",
    )
    replay.add_argument("--json", action="store_true")
    replay.add_argument(
        "--cache", default=None, metavar="DIR", help="result store directory"
    )

    convert = trace_sub.add_parser(
        "convert", help="rewrite a trace as canonical venice CSV"
    )
    convert.add_argument("path")
    convert.add_argument("out")
    convert.add_argument(
        "--format",
        dest="trace_format",
        choices=trace_formats.format_names(),
        default=None,
        help="parse the input as this format instead of auto-detecting",
    )
    convert.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="convert only the first N records",
    )

    faults = sub.add_parser(
        "faults", help="fault injection: degradation sweeps, schedule checking"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)

    sweep = faults_sub.add_parser(
        "sweep",
        help="throughput/p99 vs failed links across the five real fabrics",
    )
    sweep.add_argument("--preset", default="performance-optimized")
    sweep.add_argument("--workload", default="hm_0")
    sweep.add_argument("--requests", type=int, default=600)
    sweep.add_argument("--seed", type=int, default=42)
    sweep.add_argument(
        "--link-counts",
        nargs="*",
        type=int,
        default=None,
        metavar="N",
        help="failed-link counts of the curve (default: 0 1 2 4 8)",
    )
    sweep.add_argument("--json", action="store_true")
    _add_orchestration_flags(sweep)

    check = faults_sub.add_parser(
        "check", help="parse a fault schedule and echo its canonical form"
    )
    check.add_argument("schedule")
    check.add_argument("--json", action="store_true")

    ftl = sub.add_parser(
        "ftl",
        help="sustained-write realism: write cliffs, WA vs OP, GC x faults",
    )
    ftl_sub = ftl.add_subparsers(dest="ftl_command", required=True)

    ftl_sweep = ftl_sub.add_parser(
        "sweep",
        help="write cliff, WA-vs-over-provisioning, and GC x faults "
        "curves across the five real fabrics (docs/ftl.md)",
    )
    ftl_sweep.add_argument("--preset", default="performance-optimized")
    ftl_sweep.add_argument(
        "--workload",
        default=None,
        help="trace to sustain (default prxy_0, the write-heaviest trace)",
    )
    ftl_sweep.add_argument("--requests", type=int, default=600)
    ftl_sweep.add_argument("--seed", type=int, default=42)
    ftl_sweep.add_argument(
        "--fills",
        nargs="*",
        type=float,
        default=None,
        metavar="F",
        help="preconditioned fill levels of the write-cliff curve "
        "(default: 0.5 0.7 0.85 0.9)",
    )
    ftl_sweep.add_argument(
        "--op",
        nargs="*",
        type=float,
        default=None,
        metavar="FRACTION",
        help="over-provisioning levels of the WA curve "
        "(default: 0.07 0.2 0.35)",
    )
    ftl_sweep.add_argument(
        "--fill",
        type=float,
        default=None,
        metavar="F",
        help="fill level of the WA-vs-OP curve (default 0.85)",
    )
    ftl_sweep.add_argument(
        "--churn",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fraction of the fill overwritten before measuring, putting "
        "the device in GC steady state (default 0.35)",
    )
    ftl_sweep.add_argument(
        "--link-faults",
        type=int,
        default=1,
        metavar="N",
        help="dead links of the GC x faults composition cell (default 1)",
    )
    ftl_sweep.add_argument(
        "--blocks-per-plane",
        type=int,
        default=16,
        help="plane capacity in blocks (default 16; small planes make a "
        "few hundred requests a meaningful fraction of the array)",
    )
    ftl_sweep.add_argument(
        "--pages-per-block",
        type=int,
        default=8,
        help="block capacity in pages (default 8)",
    )
    ftl_sweep.add_argument("--json", action="store_true")
    _add_orchestration_flags(ftl_sweep)

    fleet = sub.add_parser(
        "fleet", help="multi-SSD fleets: tenant fan-out, placement, roll-ups"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser(
        "run", help="simulate one fleet and print the rolled-up metrics"
    )
    fleet_run.add_argument(
        "--devices", type=int, default=2, metavar="N",
        help="fleet size when --designs is not given (default 2)",
    )
    fleet_run.add_argument(
        "--design", default="venice", choices=design_names(),
        help="fabric replicated across all members (default venice)",
    )
    fleet_run.add_argument(
        "--designs", nargs="*", default=None, metavar="DESIGN",
        help="explicit per-member fabrics (mixed fleets; overrides "
        "--design/--devices)",
    )
    fleet_run.add_argument("--preset", default="performance-optimized")
    fleet_run.add_argument("--workload", default="hm_0")
    fleet_run.add_argument(
        "--tenants", type=int, default=8, metavar="T",
        help="simulated tenant streams fanned out over the fleet (default 8)",
    )
    fleet_run.add_argument(
        "--placement", default="round-robin", metavar="POLICY",
        help="round-robin | stripe[:BYTES] | hash-tenant (default round-robin)",
    )
    fleet_run.add_argument("--requests", type=int, default=600)
    fleet_run.add_argument("--seed", type=int, default=42)
    fleet_run.add_argument(
        "--faults", nargs="*", default=None, metavar="[IDX:]SCHEDULE",
        help="fault schedules; 'IDX:SCHEDULE' degrades member IDX only, a "
        "bare SCHEDULE degrades every member",
    )
    fleet_run.add_argument(
        "--sample", type=int, default=0, metavar="K",
        help="simulate only K stratified representative members and "
        "extrapolate fleet totals with 95%% confidence intervals "
        "(0 = exact)",
    )
    fleet_run.add_argument(
        "--qos", default="", metavar="POLICY",
        help="dispatcher QoS policy: none | token-bucket:RATE[,BURST] | "
        "wfq:W0,W1,... | slo:P99_US[,ADMIT] (default: arrival order)",
    )
    fleet_run.add_argument(
        "--burst", default="", metavar="TxF",
        help="adversarial burst clause: tenant T offers F times its fair "
        "share, e.g. 0x8 (default: all tenants fair)",
    )
    fleet_run.add_argument("--json", action="store_true")
    _add_orchestration_flags(fleet_run)

    fleet_sweep = fleet_sub.add_parser(
        "sweep", help="throughput/p99 vs device count and placement policy"
    )
    fleet_sweep.add_argument(
        "--devices", nargs="*", type=int, default=None, metavar="N",
        help="device counts of the curve (default: 1 2 4)",
    )
    fleet_sweep.add_argument(
        "--placements", nargs="*", default=None, metavar="POLICY",
        help="placement policies to compare (default: round-robin)",
    )
    fleet_sweep.add_argument("--design", default="venice", choices=design_names())
    fleet_sweep.add_argument("--preset", default="performance-optimized")
    fleet_sweep.add_argument("--workload", default="hm_0")
    fleet_sweep.add_argument("--tenants", type=int, default=8, metavar="T")
    fleet_sweep.add_argument("--requests", type=int, default=600)
    fleet_sweep.add_argument("--seed", type=int, default=42)
    fleet_sweep.add_argument(
        "--sample", type=int, default=0, metavar="K",
        help="simulate K stratified representatives per cell and "
        "extrapolate (cells with <= K devices run exact; 0 = exact)",
    )
    fleet_sweep.add_argument(
        "--qos", default="", metavar="POLICY",
        help="dispatcher QoS policy applied to every cell "
        "(grammar as for fleet run --qos)",
    )
    fleet_sweep.add_argument(
        "--burst", default="", metavar="TxF",
        help="adversarial burst clause applied to every cell, e.g. 0x8",
    )
    fleet_sweep.add_argument("--json", action="store_true")
    _add_orchestration_flags(fleet_sweep)

    qos = sub.add_parser(
        "qos",
        help="multi-tenant QoS isolation: victim p99 vs noisy neighbour",
    )
    qos_sub = qos.add_subparsers(dest="qos_command", required=True)

    qos_sweep = qos_sub.add_parser(
        "sweep",
        help="victim-tenant p99 vs adversarial offered load, per fabric x "
        "placement x dispatcher policy (docs/qos.md)",
    )
    qos_sweep.add_argument("--preset", default="performance-optimized")
    qos_sweep.add_argument(
        "--workload",
        default=None,
        help="trace each tenant replays (default hm_0)",
    )
    qos_sweep.add_argument("--requests", type=int, default=300)
    qos_sweep.add_argument("--seed", type=int, default=42)
    qos_sweep.add_argument(
        "--levels",
        nargs="*",
        type=float,
        default=None,
        metavar="F",
        help="offered-load multipliers of the burst tenant "
        "(default: 1 2 4 8; 1 = fair share)",
    )
    qos_sweep.add_argument(
        "--policies",
        nargs="*",
        default=None,
        metavar="POLICY",
        help="QoS policies to compare (grammar as for fleet run --qos; "
        "default: none, the calibrated fair-share token bucket, "
        "victim-weighted wfq, and slo admission)",
    )
    qos_sweep.add_argument(
        "--designs",
        nargs="*",
        default=None,
        metavar="DESIGN",
        choices=design_names(),
        help="fabrics to sweep (default: all five)",
    )
    qos_sweep.add_argument(
        "--placements",
        nargs="*",
        default=None,
        metavar="POLICY",
        help="placement policies to sweep (default: all)",
    )
    qos_sweep.add_argument(
        "--devices", type=int, default=2, metavar="N",
        help="devices per fleet cell (default 2)",
    )
    qos_sweep.add_argument(
        "--tenants", type=int, default=4, metavar="T",
        help="tenant streams per cell (default 4)",
    )
    qos_sweep.add_argument(
        "--burst-tenant", type=int, default=0, metavar="T",
        help="the tenant that misbehaves (default 0)",
    )
    qos_sweep.add_argument("--json", action="store_true")
    _add_orchestration_flags(qos_sweep)

    store = sub.add_parser(
        "store", help="result-store maintenance and observability"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats",
        help="entry/checkpoint counts, byte totals, session cache counters",
    )
    store_stats.add_argument(
        "--cache", required=True, metavar="DIR",
        help="result store directory to inspect",
    )
    store_stats.add_argument("--json", action="store_true")

    store_verify = store_sub.add_parser(
        "verify",
        help="check every entry's content hash against its digest key",
    )
    store_verify.add_argument(
        "--cache", required=True, metavar="DIR",
        help="result store directory to verify",
    )
    store_verify.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt entries (they re-simulate as cache misses)",
    )
    store_verify.add_argument("--json", action="store_true")

    store_gc = store_sub.add_parser(
        "gc", help="drop quarantined entries and stale temp files"
    )
    store_gc.add_argument(
        "--cache", required=True, metavar="DIR",
        help="result store directory to collect",
    )
    store_gc.add_argument("--json", action="store_true")

    store_compact = store_sub.add_parser(
        "compact",
        help="rewrite storage compactly (minify JSON / VACUUM sqlite)",
    )
    store_compact.add_argument(
        "--cache", required=True, metavar="DIR",
        help="result store directory to compact",
    )
    store_compact.add_argument("--json", action="store_true")

    worker = sub.add_parser(
        "worker",
        help="drain a work queue: lease tasks, heartbeat, execute, retry "
        "(docs/distributed.md)",
    )
    worker.add_argument(
        "--queue", required=True, metavar="DIR",
        help="queue directory shared with the enqueuing sweep",
    )
    worker.add_argument(
        "--owner", default=None, metavar="ID",
        help="worker identity recorded in claims (default host-pid-nonce)",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after N tasks (default: unbounded)",
    )
    worker.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit once the queue stays empty this long (default: poll "
        "forever)",
    )
    worker.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock limit; a hung simulation is killed and "
        "counted as a failed attempt",
    )
    worker.add_argument("--json", action="store_true")

    queue = sub.add_parser(
        "queue", help="work-queue observability: task states, dead letters"
    )
    queue_sub = queue.add_subparsers(dest="queue_command", required=True)
    queue_status = queue_sub.add_parser(
        "status", help="task-state counts and the queue's frozen policy"
    )
    queue_status.add_argument("--queue", required=True, metavar="DIR")
    queue_status.add_argument("--json", action="store_true")
    queue_dead = queue_sub.add_parser(
        "dead", help="dead-lettered tasks with their captured errors"
    )
    queue_dead.add_argument("--queue", required=True, metavar="DIR")
    queue_dead.add_argument("--json", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="run the HTTP control plane: accept run/fleet/sweep specs "
        "over JSON, execute them on a worker pool, survive restarts "
        "(docs/service.md)",
    )
    serve.add_argument(
        "--state", required=True, metavar="DIR",
        help="service state directory (job table + result store); any "
        "daemon pointed at the same DIR serves the same jobs and cache",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8423, metavar="P",
        help="bind port; 0 picks an ephemeral port, written to "
        "service.json in the state directory (default 8423)",
    )
    serve.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="background worker threads executing accepted jobs "
        "(default 2)",
    )
    serve.add_argument(
        "--store-backend",
        choices=("auto",) + BACKEND_NAMES,
        default="auto",
        help="result-store layout for the service store (auto detects)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-spec wall-clock limit inside job execution",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log requests and job transitions to stderr",
    )

    list_parser = sub.add_parser(
        "list",
        help="list workloads, mixes, designs, presets, trace formats, "
        "placements",
    )
    list_parser.add_argument(
        "--json", action="store_true",
        help="machine-readable name catalog (what the service dashboard "
        "and scripts consume)",
    )
    return parser


def _scale(requests: int, seed: int) -> ExperimentScale:
    return ExperimentScale(
        requests=requests,
        requests_per_mix_constituent=max(50, requests // 3),
        seed=seed,
    )


def _store(args: argparse.Namespace) -> Optional[ResultStore]:
    if not getattr(args, "cache", None):
        return None
    try:
        return ResultStore(
            args.cache, backend=getattr(args, "store_backend", "auto")
        )
    except OSError as error:
        raise ConfigurationError(
            f"cannot use {args.cache!r} as a cache directory: {error}"
        )


def _orchestration(args: argparse.Namespace):
    """Resolve the (executor, store) pair the sweep commands share.

    ``--queue DIR`` routes the batch through a crash-safe work queue
    (enqueue-and-wait, participating as a worker); the queue binds the
    result store, so ``--cache`` names the same store every external
    worker writes into.  Without it, ``--jobs``/``--timeout`` pick the
    in-process serial or multiprocessing backend.
    """
    timeout = getattr(args, "timeout", None)
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"--timeout must be > 0, got {timeout}")
    queue_dir = getattr(args, "queue", None)
    if queue_dir:
        from repro.experiments.queue import WorkQueue
        from repro.experiments.worker import QueueExecutor

        queue = WorkQueue(
            queue_dir,
            store_dir=getattr(args, "cache", None),
            store_backend=getattr(args, "store_backend", "auto"),
            lease_seconds=getattr(args, "lease", 30.0),
            max_attempts=getattr(args, "max_attempts", 3),
        )
        executor = QueueExecutor(queue, timeout=timeout)
        # Serve figure-level cache hits from the queue's bound store, so a
        # warm re-run enqueues nothing that is already computed.
        return executor, executor.worker.store
    return make_executor(getattr(args, "jobs", 1), timeout), _store(args)


def _emit_run_result(result, as_json: bool) -> int:
    """Print one RunResult as a metrics table or JSON payload."""
    if as_json:
        payload = {
            "design": result.design,
            "workload": result.workload,
            "config": result.config_name,
            "requests": result.requests_completed,
            "execution_time_ns": result.execution_time_ns,
            "iops": result.iops,
            "mean_latency_ns": result.mean_latency_ns,
            "p99_latency_ns": result.p99_latency_ns,
            "conflict_fraction": result.conflict_fraction,
            "energy_mj": result.energy_mj,
            "average_power_mw": result.average_power_mw,
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        format_table(
            ["metric", "value"],
            [
                ["design", result.design],
                ["workload", result.workload],
                ["requests", result.requests_completed],
                ["execution time (ms)", result.execution_time_ns / 1e6],
                ["IOPS", result.iops],
                ["mean latency (us)", result.mean_latency_ns / 1e3],
                ["p99 latency (us)", result.p99_latency_ns / 1e3],
                ["conflict fraction", result.conflict_fraction],
                ["energy (mJ)", result.energy_mj],
                ["avg power (mW)", result.average_power_mw],
            ],
            title=f"{result.design} on {result.workload} ({result.config_name})",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = _scale(args.requests, args.seed)
    # FTL knobs join the spec digest only when given on the command line;
    # a knob-free invocation produces byte-identical specs and results.
    device_kwargs = {}
    if args.wear_leveling:
        device_kwargs["enable_wear_leveling"] = True
    for name, value in (
        ("over_provisioning", args.over_provisioning),
        ("gc_threshold_free_fraction", args.gc_threshold),
        ("gc_stop_free_fraction", args.gc_stop),
    ):
        if value is not None:
            device_kwargs[name] = value
    spec = make_spec(
        DesignKind.from_name(args.design),
        args.preset,
        args.workload,
        scale,
        mix=args.workload in mix_names(),
        **device_kwargs,
    )
    result = execute_specs([spec], store=_store(args))[spec]
    return _emit_run_result(result, args.json)


def _cmd_compare(args: argparse.Namespace) -> int:
    scale = _scale(args.requests, args.seed)
    executor, store = _orchestration(args)
    results = run_suite(
        args.preset,
        args.workload,
        scale,
        mix=args.workload in mix_names(),
        executor=executor,
        store=store,
    )
    baseline = results["baseline"]
    rows = [
        [
            name,
            result.speedup_over(baseline),
            result.iops,
            result.p99_latency_ns / 1e3,
            result.conflict_fraction,
        ]
        for name, result in results.items()
    ]
    print(
        format_table(
            ["design", "speedup", "IOPS", "p99 (us)", "conflicts"],
            rows,
            title=f"{args.workload} on {args.preset}",
        )
    )
    return 0


def _print_figure(name: str, result: dict) -> None:
    if "speedups" in result:
        designs = sorted({d for v in result["speedups"].values() for d in v})
        print(speedup_table(result["speedups"], designs, title=name))
    elif "normalized_throughput" in result:
        designs = sorted(
            {d for v in result["normalized_throughput"].values() for d in v}
        )
        print(
            speedup_table(
                result["normalized_throughput"],
                designs,
                title=name,
                mean_label="AVG",
            )
        )
    else:
        print(json.dumps(result, indent=2, default=str))


def _cmd_figure(args: argparse.Namespace) -> int:
    scale = _scale(args.requests, args.seed)
    requested = args.workloads
    if args.trace is not None:
        if not args.trace:
            raise ConfigurationError(
                "--trace needs at least one file (omit the flag to use the "
                "default workload set)"
            )
        if requested is not None:
            raise ConfigurationError(
                "--trace and --workloads are mutually exclusive"
            )
        requested = [TRACE_WORKLOAD_PREFIX + path for path in args.trace]
    workloads = figures.validate_figure_workloads(args.name, requested)
    executor, store = _orchestration(args)
    result = figures.run_figure(
        args.name,
        scale,
        workloads,
        executor=executor,
        store=store,
        faults=args.faults,
        warmup=args.warmup,
        early_stop=args.early_stop,
    )
    if args.json:
        print(json.dumps(result, indent=2, default=str))
        return 0
    _print_figure(args.name, result)
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    scale = _scale(args.requests, args.seed)
    executor, store = _orchestration(args)
    results = figures.run_all_figures(
        scale,
        workloads=args.workloads,
        mixes=args.mixes,
        figures=args.figures,
        executor=executor,
        store=store,
        warmup=args.warmup,
        early_stop=args.early_stop,
    )
    if args.json:
        print(json.dumps(results, indent=2, default=str))
        return 0
    for name, result in results.items():
        _print_figure(name, result)
        print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import check_regression, run_bench

    payload = run_bench(quick=args.quick, speedup=args.speedup)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        engine = payload["engine"]
        print(f"engine events/sec:    {engine['events_per_sec']:,.0f}")
        print(f"resource cycles/sec:  {payload['resources']['cycles_per_sec']:,.0f}")
        print(f"fan-out procs/sec:    {payload['fanout']['processes_per_sec']:,.0f}")
        for design, stats in payload["end_to_end"].items():
            print(f"e2e {design:9s} req/sec: {stats['requests_per_sec']:,.1f}")
        print(f"aggregate req/sec:    {payload['requests_per_sec']:,.1f}")
        if payload["peak_rss_kb"] is not None:
            print(f"peak RSS:             {payload['peak_rss_kb']:,} KiB")
        sweep = payload.get("sweep_speedup")
        if sweep:
            print(
                f"sweep events exact:   {sweep['exact_events']:,} "
                f"({sweep['exact_cells']} cells)"
            )
            print(
                f"sweep events opt:     {sweep['optimized_events']:,} "
                f"({sweep['optimized_cells']} cells, "
                f"{sweep['early_stopped_cells']} early-stopped, "
                f"{sweep['warmups_computed']} warm-ups)"
            )
            print(f"sweep event speedup:  {sweep['event_speedup']:.2f}x")
        print(f"wrote {args.out}")
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"cannot read bench baseline {args.baseline!r}: {error}"
            )
        failures = check_regression(payload, baseline, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 3
        print(f"no regression vs {args.baseline} (tolerance {args.tolerance:.0%})")
    return 0


def _trace_summary(args: argparse.Namespace) -> dict:
    """Stream a trace file once and summarize it (inspect payload)."""
    fmt = (
        trace_formats.format_by_name(args.trace_format)
        if args.trace_format
        else trace_formats.detect_format(args.path)
    )
    count = reads = size_total = 0
    first_arrival = last_arrival = 0
    for record in trace_formats.iter_trace_records(
        args.path, fmt, limit=args.limit
    ):
        if count == 0:
            first_arrival = record.arrival_ns
        last_arrival = record.arrival_ns
        count += 1
        reads += record.kind.value == "read"
        size_total += record.size_bytes
    span_ns = last_arrival - first_arrival
    return {
        "path": args.path,
        "format": fmt.name,
        "format_description": fmt.description,
        "records": count,
        "read_pct": round(100.0 * reads / count, 1),
        "avg_size_kb": round(size_total / count / 1024.0, 1),
        "avg_interarrival_us": round(
            span_ns / max(1, count - 1) / 1e3, 1
        ),
        "duration_ms": round(span_ns / 1e6, 3),
        "digest": trace_formats.trace_digest(args.path, fmt),
    }


def _cmd_trace_inspect(args: argparse.Namespace) -> int:
    summary = _trace_summary(args)
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(
        format_table(
            ["field", "value"],
            [[key, value] for key, value in summary.items()],
            title=f"trace {args.path}",
        )
    )
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    scale = _scale(args.requests, args.seed)
    options = {}
    if args.time_scale is not None:
        options["time_scale"] = args.time_scale
    if args.lba_policy is not None:
        options["lba_policy"] = args.lba_policy
    spec = make_spec(
        DesignKind.from_name(args.design),
        args.preset,
        TRACE_WORKLOAD_PREFIX + args.path,
        scale,
        trace_options=options or None,
    )
    result = execute_specs([spec], store=_store(args))[spec]
    return _emit_run_result(result, args.json)


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    import csv
    import os

    fmt = args.trace_format or trace_formats.detect_format(args.path)
    written = 0
    # Write-then-rename: a parse error mid-file must not leave a truncated
    # (but well-formed-looking) canonical CSV at the target path.
    tmp = f"{args.out}.tmp"
    try:
        with open(tmp, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["arrival_ns", "kind", "offset_bytes", "size_bytes"])
            for record in trace_formats.iter_trace_records(
                args.path, fmt, limit=args.limit
            ):
                writer.writerow(
                    [
                        record.arrival_ns,
                        record.kind.value,
                        record.offset_bytes,
                        record.size_bytes,
                    ]
                )
                written += 1
        os.replace(tmp, args.out)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    print(f"wrote {written} records to {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "inspect":
        return _cmd_trace_inspect(args)
    if args.trace_command == "replay":
        return _cmd_trace_replay(args)
    return _cmd_trace_convert(args)


def _cmd_faults_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.faults import DEFAULT_LINK_COUNTS, run_faults_sweep

    scale = _scale(args.requests, args.seed)
    link_counts = (
        args.link_counts if args.link_counts else list(DEFAULT_LINK_COUNTS)
    )
    executor, store = _orchestration(args)
    result = run_faults_sweep(
        preset=args.preset,
        workload=args.workload,
        scale=scale,
        link_counts=link_counts,
        seed=args.seed,
        mix=args.workload in mix_names(),
        executor=executor,
        store=store,
    )
    if args.json:
        print(json.dumps(result, indent=2, default=str))
        return 0
    designs = result["designs"]
    curve = result["curve"]
    counts = result["link_counts"]
    for metric, label, scale_by in (
        ("iops", "throughput (IOPS)", 1.0),
        ("p99_latency_ns", "p99 latency (us)", 1e-3),
        ("completed_fraction", "completed fraction", 1.0),
    ):
        rows = [
            [count]
            + [curve[count][design][metric] * scale_by for design in designs]
            for count in counts
        ]
        print(
            format_table(
                ["failed links"] + list(designs),
                rows,
                title=f"{label} -- {args.workload} on {args.preset} "
                f"({result['mesh']} mesh)",
            )
        )
        print()
    return 0


def _cmd_faults_check(args: argparse.Namespace) -> int:
    from repro.sim.faults import FaultSchedule

    schedule = FaultSchedule.parse(args.schedule)
    if args.json:
        print(
            json.dumps(
                {
                    "canonical": schedule.to_spec(),
                    "events": [event.to_clause() for event in schedule],
                },
                indent=2,
            )
        )
        return 0
    print(f"events: {len(schedule)}")
    print(f"canonical: {schedule.to_spec()}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.faults_command == "sweep":
        return _cmd_faults_sweep(args)
    return _cmd_faults_check(args)


def _cmd_ftl_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.ftl import (
        DEFAULT_CHURN,
        DEFAULT_FILL_LEVELS,
        DEFAULT_OP_LEVELS,
        DEFAULT_WA_FILL,
        DEFAULT_WORKLOAD,
        run_ftl_sweep,
        sustained_scale,
    )

    scale = sustained_scale(
        requests=args.requests,
        seed=args.seed,
        blocks_per_plane=args.blocks_per_plane,
        pages_per_block=args.pages_per_block,
    )
    executor, store = _orchestration(args)
    result = run_ftl_sweep(
        preset=args.preset,
        workload=args.workload or DEFAULT_WORKLOAD,
        scale=scale,
        fill_levels=args.fills or DEFAULT_FILL_LEVELS,
        op_levels=args.op or DEFAULT_OP_LEVELS,
        wa_fill=args.fill if args.fill is not None else DEFAULT_WA_FILL,
        churn=args.churn if args.churn is not None else DEFAULT_CHURN,
        seed=args.seed,
        faulted_links=args.link_faults,
        executor=executor,
        store=store,
    )
    if args.json:
        print(json.dumps(result, indent=2, default=str))
        return 0
    designs = result["designs"]
    title_suffix = f"{result['workload']} on {args.preset}"

    cliff = result["write_cliff"]
    for metric, label, scale_by in (
        ("iops", "throughput (IOPS)", 1.0),
        ("p99_latency_ns", "p99 latency (us)", 1e-3),
        ("gc_stall_ns", "GC stall time (us)", 1e-3),
        ("write_amplification", "write amplification", 1.0),
    ):
        rows = [
            [cell["fill"]]
            + [cliff[design][index][metric] * scale_by for design in designs]
            for index, cell in enumerate(cliff[designs[0]])
        ]
        print(
            format_table(
                ["fill"] + list(designs),
                rows,
                title=f"write cliff: {label} -- {title_suffix}",
            )
        )
        print()

    wa = result["wa_op"]
    rows = [
        [cell["over_provisioning"]]
        + [wa[design][index]["write_amplification"] for design in designs]
        for index, cell in enumerate(wa[designs[0]])
    ]
    print(
        format_table(
            ["over-provisioning"] + list(designs),
            rows,
            title=f"write amplification vs OP at fill {result['wa_fill']:g} "
            f"-- {title_suffix}",
        )
    )
    print()

    gc_faults = result["gc_faults"]
    rows = [
        [
            design,
            gc_faults[design]["clean"]["p999_latency_ns"] * 1e-3,
            gc_faults[design]["faulted"]["p999_latency_ns"] * 1e-3,
            gc_faults[design]["p999_ratio"],
        ]
        for design in designs
    ]
    print(
        format_table(
            ["design", "clean p999 (us)", "faulted p999 (us)", "ratio"],
            rows,
            title=f"GC x faults at fill {result['gc_fill']:g} "
            f"({result['faulted_links']} dead link(s)) -- {title_suffix}",
        )
    )
    return 0


def _cmd_ftl(args: argparse.Namespace) -> int:
    return _cmd_ftl_sweep(args)


def _parse_member_faults(entries, count: int):
    """``--faults`` grammar: ``IDX:SCHEDULE`` targets one member, a bare
    ``SCHEDULE`` targets every member.  Returns a per-member list.

    Bare entries are the fleet-wide default and indexed entries override
    them, independent of argument order -- otherwise a bare schedule
    appearing after an indexed one would silently wipe it.
    """
    if not entries:
        return None
    fleet_wide = None
    indexed = {}
    for entry in entries:
        head, _, tail = entry.partition(":")
        if tail and head.strip().isdigit():
            index = int(head)
            if not 0 <= index < count:
                raise ConfigurationError(
                    f"--faults member index {index} outside fleet of {count}"
                )
            indexed[index] = tail
        else:
            fleet_wide = entry
    member_faults = [fleet_wide] * count
    for index, schedule in indexed.items():
        member_faults[index] = schedule
    return member_faults


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.fleet import make_fleet_spec, run_fleet

    scale = _scale(args.requests, args.seed)
    designs = args.designs if args.designs else args.design
    count = len(args.designs) if args.designs else args.devices
    fleet = make_fleet_spec(
        designs,
        args.preset,
        args.workload,
        scale,
        devices=count,
        placement=args.placement,
        tenants=args.tenants,
        sample=min(args.sample, count) if args.sample > 0 else 0,
        qos=args.qos,
        burst=args.burst,
        mix=args.workload in mix_names(),
        faults=_parse_member_faults(args.faults, count),
    )
    executor, store = _orchestration(args)
    payload = run_fleet(fleet, executor=executor, store=store)
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
        return 0
    latency = payload["latency"]
    imbalance = payload["imbalance"]
    print(
        format_table(
            ["metric", "value"],
            [
                ["devices", payload["devices"]],
                ["placement", payload["placement"]],
                ["tenants", payload["tenants"]],
                ["requests completed", payload["requests_completed"]],
                ["makespan (ms)", payload["makespan_ns"] / 1e6],
                ["aggregate IOPS", payload["aggregate_iops"]],
                ["sum of device IOPS", payload["sum_device_iops"]],
                ["fleet mean latency (us)", latency["mean_ns"] / 1e3],
                ["fleet p50 latency (us)", latency["p50_ns"] / 1e3],
                ["fleet p99 latency (us)", latency["p99_ns"] / 1e3],
                ["fleet p999 latency (us)", latency["p999_ns"] / 1e3],
                ["imbalance (max/mean)", imbalance["max_over_mean"]],
                ["imbalance (cv)", imbalance["cv"]],
            ],
            title=f"{fleet.label()} on {args.workload}",
        )
    )
    sample = payload.get("sample")
    if sample:
        iops_ci = sample["iops_per_device_ci"]
        p99_ci = sample["p99_ns_ci"]
        print()
        print(
            format_table(
                ["metric", "value"],
                [
                    ["devices simulated", sample["devices_simulated"]],
                    ["scale factor", sample["scale_factor"]],
                    [
                        "IOPS/device (95% CI)",
                        f"{iops_ci['mean']:,.1f} +/- {iops_ci['half_width']:,.1f}",
                    ],
                    [
                        "p99 us (95% CI)",
                        f"{p99_ci['mean'] / 1e3:,.1f} +/- "
                        f"{p99_ci['half_width'] / 1e3:,.1f}",
                    ],
                ],
                title="sampled extrapolation",
            )
        )
    rows = [
        [
            index,
            cell["design"],
            cell["requests_completed"],
            cell["iops"],
            cell["p99_latency_ns"] / 1e3,
        ]
        for index, cell in enumerate(payload["per_device"])
    ]
    print()
    print(
        format_table(
            ["device", "design", "requests", "IOPS", "p99 (us)"],
            rows,
            title="per-device",
        )
    )
    tenant_latency = payload.get("tenant_latency")
    if tenant_latency:
        rows = [
            [
                tenant,
                cell["count"],
                cell["mean_ns"] / 1e3,
                cell["p50_ns"] / 1e3,
                cell["p99_ns"] / 1e3,
            ]
            for tenant, cell in tenant_latency.items()
        ]
        print()
        print(
            format_table(
                ["tenant", "requests", "mean (us)", "p50 (us)", "p99 (us)"],
                rows,
                title="per-tenant",
            )
        )
    return 0


def _cmd_fleet_sweep(args: argparse.Namespace) -> int:
    from repro.fleet import (
        DEFAULT_DEVICE_COUNTS,
        DEFAULT_PLACEMENTS,
        run_fleet_sweep,
    )

    scale = _scale(args.requests, args.seed)
    executor, store = _orchestration(args)
    payload = run_fleet_sweep(
        args.design,
        args.preset,
        args.workload,
        scale,
        device_counts=args.devices or DEFAULT_DEVICE_COUNTS,
        placements=args.placements or DEFAULT_PLACEMENTS,
        tenants=args.tenants,
        sample=max(0, args.sample),
        qos=args.qos,
        burst=args.burst,
        mix=args.workload in mix_names(),
        executor=executor,
        store=store,
    )
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
        return 0
    counts = payload["device_counts"]
    for placement in payload["placements"]:
        cells = payload["curve"][placement]
        rows = [
            [
                count,
                cells[count]["aggregate_iops"],
                cells[count]["latency"]["p99_ns"] / 1e3,
                cells[count]["latency"]["p999_ns"] / 1e3,
                cells[count]["imbalance"]["max_over_mean"],
            ]
            for count in counts
        ]
        print(
            format_table(
                ["devices", "aggregate IOPS", "p99 (us)", "p999 (us)",
                 "imbalance"],
                rows,
                title=f"{placement} -- {args.design} on {args.workload} "
                f"({payload['tenants']} tenants)",
            )
        )
        print()
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "run":
        return _cmd_fleet_run(args)
    return _cmd_fleet_sweep(args)


def _cmd_qos_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.faults import SWEEP_DESIGNS
    from repro.experiments.qos import (
        DEFAULT_BURST_LEVELS,
        DEFAULT_WORKLOAD,
        qos_scale,
        run_qos_sweep,
    )

    scale = qos_scale(requests=args.requests, seed=args.seed)
    executor, store = _orchestration(args)
    result = run_qos_sweep(
        preset=args.preset,
        workload=args.workload or DEFAULT_WORKLOAD,
        scale=scale,
        levels=args.levels or DEFAULT_BURST_LEVELS,
        policies=args.policies,
        designs=args.designs or SWEEP_DESIGNS,
        placements=args.placements,
        seed=args.seed,
        devices=args.devices,
        tenants=args.tenants,
        burst_tenant=args.burst_tenant,
        executor=executor,
        store=store,
    )
    if args.json:
        print(json.dumps(result, indent=2, default=str))
        return 0
    designs = result["designs"]
    levels = result["levels"]
    for placement in result["placements"]:
        per_policy = result["curve"][placement]
        for label, spec in result["policies"].items():
            per_design = per_policy[label]
            rows = [
                [f"{level:g}x"]
                + [
                    per_design[design][index]["victim_p99_ns"] / 1e3
                    for design in designs
                ]
                for index, level in enumerate(levels)
            ]
            shown = spec or "arrival order"
            print(
                format_table(
                    ["burst"] + list(designs),
                    rows,
                    title=f"victim p99 (us) -- {label} ({shown}) -- "
                    f"{placement} -- {result['workload']} on "
                    f"{result['preset']}",
                )
            )
            print()
    return 0


def _cmd_qos(args: argparse.Namespace) -> int:
    return _cmd_qos_sweep(args)


def _open_store(args: argparse.Namespace) -> ResultStore:
    import os

    if not os.path.isdir(args.cache):
        raise ConfigurationError(
            f"{args.cache!r} is not a result-store directory"
        )
    return ResultStore(args.cache)


def _emit_payload(payload: dict, as_json: bool, title: str) -> int:
    if as_json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        format_table(
            ["field", "value"],
            [[key, value] for key, value in payload.items()],
            title=title,
        )
    )
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    stats = _open_store(args).stats()
    return _emit_payload(stats, args.json, f"store {args.cache}")


def _cmd_store_verify(args: argparse.Namespace) -> int:
    report = _open_store(args).verify(repair=args.repair)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"checked {report['checked']} entries "
            f"({report['backend']} layout): {report['ok']} ok, "
            f"{len(report['corrupt'])} corrupt, "
            f"{report['quarantined']} quarantined"
        )
        for entry in report["corrupt"]:
            print(f"  corrupt {entry['digest'][:12]}: {entry['error']}")
        if report["corrupt"] and not args.repair:
            print("run again with --repair to quarantine them")
    # Corruption found but left in place is an error condition; a repaired
    # store exits 0 because the bad entries can no longer be served.
    return 4 if report["corrupt"] and not args.repair else 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    report = _open_store(args).gc()
    return _emit_payload(report, args.json, f"store gc {args.cache}")


def _cmd_store_compact(args: argparse.Namespace) -> int:
    report = _open_store(args).compact()
    return _emit_payload(report, args.json, f"store compact {args.cache}")


def _cmd_store(args: argparse.Namespace) -> int:
    if args.store_command == "stats":
        return _cmd_store_stats(args)
    if args.store_command == "verify":
        return _cmd_store_verify(args)
    if args.store_command == "gc":
        return _cmd_store_gc(args)
    return _cmd_store_compact(args)


def _join_queue(directory):
    """Open an *existing* queue; joining must never invent a config.

    A worker that raced ahead of the sweep would otherwise freeze
    ``queue.json`` with default policy and the wrong store binding, and
    the sweep would then refuse its own queue directory.
    """
    from pathlib import Path

    from repro.errors import QueueError
    from repro.experiments.queue import WorkQueue

    if not (Path(directory) / "queue.json").exists():
        raise QueueError(
            f"{directory} is not an initialized queue (no queue.json); "
            "start a sweep with --queue DIR first -- it freezes the "
            "queue's store binding and lease/retry policy"
        )
    return WorkQueue(directory)


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.experiments.worker import QueueWorker

    if args.timeout is not None and args.timeout <= 0:
        raise ConfigurationError(
            f"--timeout must be > 0, got {args.timeout}"
        )
    queue = _join_queue(args.queue)
    stats = QueueWorker(
        queue,
        owner=args.owner,
        max_tasks=args.max_tasks,
        idle_exit=args.idle_exit,
        timeout=args.timeout,
    ).run()
    return _emit_payload(stats, args.json, f"worker on {args.queue}")


def _cmd_queue(args: argparse.Namespace) -> int:
    queue = _join_queue(args.queue)
    if args.queue_command == "status":
        return _emit_payload(
            queue.status(), args.json, f"queue {args.queue}"
        )
    letters = queue.dead_letters()
    if args.json:
        print(json.dumps(letters, indent=2))
        return 0
    if not letters:
        print("no dead-lettered tasks")
        return 0
    for digest, letter in letters.items():
        errors = letter.get("errors") or []
        print(f"{digest[:12]} after {letter.get('attempts')} attempts:")
        if errors:
            print("  " + errors[-1].strip().replace("\n", "\n  "))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, SimulationService

    if args.jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {args.jobs}")
    if args.timeout is not None and args.timeout <= 0:
        raise ConfigurationError(
            f"--timeout must be > 0, got {args.timeout}"
        )
    service = SimulationService(
        ServiceConfig(
            state_dir=args.state,
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            store_backend=args.store_backend,
            timeout=args.timeout,
            verbose=args.verbose,
        )
    )
    service.start()
    print(
        f"venice-sim service on http://{service.host}:{service.port} "
        f"(state: {args.state})",
        flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.fleet import placement_names, qos_names

    catalog = {
        "designs": list(design_names()),
        "presets": list(PRESET_NAMES),
        "workloads": list(workload_names()),
        "mixes": list(mix_names()),
        "formats": list(trace_formats.format_names()),
        "placements": list(placement_names()),
        "qos": list(qos_names()),
        "backends": list(BACKEND_NAMES),
    }
    if args.json:
        print(json.dumps(catalog, indent=2))
        return 0
    width = max(len(name) for name in catalog)
    for name, values in catalog.items():
        print(f"{name + ':':<{width + 1}} " + ", ".join(values))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "matrix":
            return _cmd_matrix(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "ftl":
            return _cmd_ftl(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "qos":
            return _cmd_qos(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "queue":
            return _cmd_queue(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "list":
            return _cmd_list(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
