"""Command-line front end: ``python -m repro`` / ``venice-sim``.

Subcommands:

* ``run``     -- one workload on one design, print the run metrics,
* ``compare`` -- one workload across all designs, print the speedup table,
* ``figure``  -- regenerate a paper figure (fig4, fig9a, fig9b, fig10,
  fig11, fig12, fig13, fig14, fig15, table4),
* ``list``    -- enumerate workloads, mixes, designs, presets.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.config.presets import PRESET_NAMES
from repro.config.ssd_config import DesignKind
from repro.experiments import figures
from repro.experiments.reporting import format_table, speedup_table
from repro.experiments.runner import (
    ALL_DESIGNS,
    ExperimentScale,
    build_config,
    run_design_suite,
    run_workload_on,
    trace_for,
)
from repro.ssd.factory import design_names
from repro.workloads.catalog import workload_names
from repro.workloads.mixes import mix_names

_FIGURES = {
    "fig4": lambda scale, workloads: figures.fig4_motivation(scale, workloads),
    "fig9a": lambda scale, workloads: figures.fig9_speedup(
        "performance-optimized", scale, workloads
    ),
    "fig9b": lambda scale, workloads: figures.fig9_speedup(
        "cost-optimized", scale, workloads
    ),
    "fig10": lambda scale, workloads: figures.fig10_throughput(
        "performance-optimized", scale, workloads
    ),
    "fig11": lambda scale, workloads: figures.fig11_tail_latency(scale),
    "fig12": lambda scale, workloads: figures.fig12_mixed(scale),
    "fig13": lambda scale, workloads: figures.fig13_conflicts(scale, workloads),
    "fig14": lambda scale, workloads: figures.fig14_power_energy(scale, workloads),
    "fig15": lambda scale, workloads: figures.fig15_sensitivity(scale, workloads),
    "table4": lambda scale, workloads: figures.table4_overheads(scale),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="venice-sim",
        description="Venice (ISCA 2023) SSD simulator reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload on one design")
    run.add_argument("--design", default="venice", choices=design_names())
    run.add_argument("--workload", default="hm_0")
    run.add_argument("--preset", default="performance-optimized")
    run.add_argument("--requests", type=int, default=1200)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--json", action="store_true", help="emit JSON")

    compare = sub.add_parser("compare", help="one workload across all designs")
    compare.add_argument("--workload", default="hm_0")
    compare.add_argument("--preset", default="performance-optimized")
    compare.add_argument("--requests", type=int, default=1200)
    compare.add_argument("--seed", type=int, default=42)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", choices=sorted(_FIGURES))
    figure.add_argument("--requests", type=int, default=600)
    figure.add_argument("--seed", type=int, default=42)
    figure.add_argument(
        "--workloads", nargs="*", default=None, help="subset of Table 2 traces"
    )
    figure.add_argument("--json", action="store_true")

    sub.add_parser("list", help="list workloads, mixes, designs, presets")
    return parser


def _scale(requests: int, seed: int) -> ExperimentScale:
    return ExperimentScale(
        requests=requests,
        requests_per_mix_constituent=max(50, requests // 3),
        seed=seed,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    scale = _scale(args.requests, args.seed)
    config = build_config(args.preset, scale)
    trace = trace_for(args.workload, config, scale, mix=args.workload in mix_names())
    result = run_workload_on(
        DesignKind.from_name(args.design), config, trace, scale
    )
    if args.json:
        payload = {
            "design": result.design,
            "workload": result.workload,
            "config": result.config_name,
            "requests": result.requests_completed,
            "execution_time_ns": result.execution_time_ns,
            "iops": result.iops,
            "mean_latency_ns": result.mean_latency_ns,
            "p99_latency_ns": result.p99_latency_ns,
            "conflict_fraction": result.conflict_fraction,
            "energy_mj": result.energy_mj,
            "average_power_mw": result.average_power_mw,
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        format_table(
            ["metric", "value"],
            [
                ["design", result.design],
                ["workload", result.workload],
                ["requests", result.requests_completed],
                ["execution time (ms)", result.execution_time_ns / 1e6],
                ["IOPS", result.iops],
                ["mean latency (us)", result.mean_latency_ns / 1e3],
                ["p99 latency (us)", result.p99_latency_ns / 1e3],
                ["conflict fraction", result.conflict_fraction],
                ["energy (mJ)", result.energy_mj],
                ["avg power (mW)", result.average_power_mw],
            ],
            title=f"{result.design} on {result.workload} ({result.config_name})",
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scale = _scale(args.requests, args.seed)
    config = build_config(args.preset, scale)
    trace = trace_for(args.workload, config, scale, mix=args.workload in mix_names())
    results = run_design_suite(config, trace, scale, ALL_DESIGNS)
    baseline = results["baseline"]
    rows = [
        [
            name,
            result.speedup_over(baseline),
            result.iops,
            result.p99_latency_ns / 1e3,
            result.conflict_fraction,
        ]
        for name, result in results.items()
    ]
    print(
        format_table(
            ["design", "speedup", "IOPS", "p99 (us)", "conflicts"],
            rows,
            title=f"{args.workload} on {config.name}",
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    scale = _scale(args.requests, args.seed)
    workloads = args.workloads or list(figures.DEFAULT_WORKLOADS)
    result = _FIGURES[args.name](scale, workloads)
    if args.json:
        print(json.dumps(result, indent=2, default=str))
        return 0
    if "speedups" in result:
        designs = sorted({d for v in result["speedups"].values() for d in v})
        print(speedup_table(result["speedups"], designs, title=args.name))
    elif "normalized_throughput" in result:
        designs = sorted(
            {d for v in result["normalized_throughput"].values() for d in v}
        )
        print(
            speedup_table(
                result["normalized_throughput"],
                designs,
                title=args.name,
                mean_label="AVG",
            )
        )
    else:
        print(json.dumps(result, indent=2, default=str))
    return 0


def _cmd_list() -> int:
    print("designs:   " + ", ".join(design_names()))
    print("presets:   " + ", ".join(PRESET_NAMES))
    print("workloads: " + ", ".join(workload_names()))
    print("mixes:     " + ", ".join(mix_names()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "list":
        return _cmd_list()
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
