"""Table 1 presets: the two evaluated SSD configurations.

* ``performance_optimized`` -- Samsung Z-NAND class: tR = 3 us,
  tPROG = 100 us, tBERS = 1 ms, 4 KB pages, 8 channels x 8 chips,
  1 die/chip, 2 planes/die, 1024 blocks/plane, 768 pages/block,
  1.2 GB/s channel I/O rate.

* ``cost_optimized`` -- Samsung PM9A3 class 3D TLC: tR = 45 us,
  tPROG = 650 us, tBERS = 3.5 ms, 16 KB pages, 8 channels x 8 chips,
  1 die/chip, 2 planes/die, 1024 blocks/die, 1.2 GB/s channel I/O rate.

Venice network parameters (Table 1 bottom): 8x8 2D mesh, 8-bit 1 GHz links,
one router per flash chip, two 8-bit buffers per port, circuit switching,
non-minimal fully-adaptive routing.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config.ssd_config import (
    InterconnectConfig,
    NandGeometry,
    NandTimings,
    SsdConfig,
    NS_PER_US,
    NS_PER_MS,
    KIB,
)
from repro.errors import ConfigurationError


def performance_optimized(
    *,
    blocks_per_plane: int = 1024,
    pages_per_block: int = 768,
    seed: int = 42,
) -> SsdConfig:
    """Performance-optimized SSD (Samsung Z-NAND class, Table 1).

    The ``blocks_per_plane`` / ``pages_per_block`` knobs exist so tests and
    benchmarks can shrink the address space without changing the array
    geometry (which is what determines path-conflict behaviour).
    """
    return SsdConfig(
        name="performance-optimized",
        geometry=NandGeometry(
            channels=8,
            chips_per_channel=8,
            dies_per_chip=1,
            planes_per_die=2,
            blocks_per_plane=blocks_per_plane,
            pages_per_block=pages_per_block,
            page_size=4 * KIB,
        ),
        timings=NandTimings(
            read_ns=3 * NS_PER_US,
            program_ns=100 * NS_PER_US,
            erase_ns=1 * NS_PER_MS,
        ),
        interconnect=InterconnectConfig(),
        seed=seed,
    )


def cost_optimized(
    *,
    blocks_per_plane: int = 512,
    pages_per_block: int = 256,
    seed: int = 42,
) -> SsdConfig:
    """Cost-optimized SSD (Samsung PM9A3 class 3D TLC, Table 1).

    The paper lists "1024 blocks/die"; with 2 planes/die that is 512
    blocks/plane.  Page count per block is not published for this part, so a
    representative TLC value is used; it scales capacity, not conflict
    behaviour.
    """
    return SsdConfig(
        name="cost-optimized",
        geometry=NandGeometry(
            channels=8,
            chips_per_channel=8,
            dies_per_chip=1,
            planes_per_die=2,
            blocks_per_plane=blocks_per_plane,
            pages_per_block=pages_per_block,
            page_size=16 * KIB,
        ),
        timings=NandTimings(
            read_ns=45 * NS_PER_US,
            program_ns=650 * NS_PER_US,
            erase_ns=3_500_000,  # 3.5 ms
        ),
        interconnect=InterconnectConfig(),
        seed=seed,
    )


def venice_network_defaults() -> Dict[str, object]:
    """Venice design parameters from Table 1, as a plain dict for reporting."""
    return {
        "topology": "8x8 2D mesh",
        "link_width_bits": 8,
        "link_frequency_ghz": 1.0,
        "buffers_per_port": "two 8-bit",
        "switching": "circuit switching",
        "routing": "non-minimal fully-adaptive",
        "router_per": "flash chip (separate router chip, chip unmodified)",
    }


_PRESETS = {
    "performance-optimized": performance_optimized,
    "perf": performance_optimized,
    "cost-optimized": cost_optimized,
    "cost": cost_optimized,
}

PRESET_NAMES: Tuple[str, ...] = ("performance-optimized", "cost-optimized")

_CANONICAL_NAMES = {
    alias: factory.__name__.replace("_", "-")
    for alias, factory in _PRESETS.items()
}


def canonical_preset_name(name: str) -> str:
    """Resolve an (abbreviated) preset name to its canonical form.

    Run specs are content-addressed, so 'perf' and 'performance-optimized'
    must normalise to one identity or identical runs would miss the cache.
    """
    canonical = _CANONICAL_NAMES.get(name.lower())
    if canonical is None:
        raise ConfigurationError(
            f"unknown preset {name!r}; expected one of {sorted(_PRESETS)}"
        )
    return canonical


def preset_by_name(name: str, **kwargs) -> SsdConfig:
    """Look up a preset configuration by (abbreviated) name."""
    factory = _PRESETS.get(name.lower())
    if factory is None:
        raise ConfigurationError(
            f"unknown preset {name!r}; expected one of {sorted(_PRESETS)}"
        )
    return factory(**kwargs)
