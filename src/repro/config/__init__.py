"""SSD, NAND, and interconnect configuration objects.

The presets reproduce Table 1 of the paper: the performance-optimized
(Samsung Z-NAND class) and cost-optimized (Samsung PM9A3 class) SSD
configurations plus Venice's design parameters.
"""

from repro.config.ssd_config import (
    NandTimings,
    NandGeometry,
    InterconnectConfig,
    SsdConfig,
    DesignKind,
)
from repro.config.presets import (
    performance_optimized,
    cost_optimized,
    venice_network_defaults,
    preset_by_name,
    PRESET_NAMES,
)

__all__ = [
    "NandTimings",
    "NandGeometry",
    "InterconnectConfig",
    "SsdConfig",
    "DesignKind",
    "performance_optimized",
    "cost_optimized",
    "venice_network_defaults",
    "preset_by_name",
    "PRESET_NAMES",
]
