"""Configuration dataclasses for the simulated SSD.

Times are integer nanoseconds, sizes are bytes, rates are bytes/second.
Validation happens eagerly in ``__post_init__`` so a bad configuration fails
at construction, not deep inside a simulation run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000
KIB = 1024


class DesignKind(enum.Enum):
    """The six evaluated SSD communication designs (paper §3, §5)."""

    BASELINE = "baseline"
    PSSD = "pssd"
    PNSSD = "pnssd"
    NOSSD = "nossd"
    VENICE = "venice"
    IDEAL = "ideal"

    @classmethod
    def from_name(cls, name: str) -> "DesignKind":
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(kind.value for kind in cls)
            raise ConfigurationError(f"unknown design {name!r}; expected one of {valid}")


@dataclass(frozen=True)
class NandTimings:
    """NAND operation latencies (Table 1)."""

    read_ns: int
    program_ns: int
    erase_ns: int
    command_ns: int = 10  # CMD transfer: 10 ns (paper §3.1)

    def __post_init__(self) -> None:
        for name in ("read_ns", "program_ns", "erase_ns", "command_ns"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


@dataclass(frozen=True)
class NandGeometry:
    """Physical organisation of the flash array (Table 1)."""

    channels: int = 8
    chips_per_channel: int = 8
    dies_per_chip: int = 1
    planes_per_die: int = 2
    blocks_per_plane: int = 1024
    pages_per_block: int = 768
    page_size: int = 4 * KIB

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @property
    def total_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def dies_total(self) -> int:
        return self.total_chips * self.dies_per_chip

    @property
    def planes_total(self) -> int:
        return self.dies_total * self.planes_per_die

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.planes_total * self.pages_per_plane

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size


@dataclass(frozen=True)
class InterconnectConfig:
    """Parameters of the communication substrate.

    ``channel_rate`` applies to the baseline/pSSD/pnSSD/ideal shared buses
    (1.2 GB/s per Table 1).  ``link_width``/``link_frequency`` describe the
    mesh links of NoSSD and Venice (8-bit, 1 GHz per Table 1), giving a link
    rate of 1 GB/s.
    """

    channel_rate: int = 1_200_000_000  # bytes/second
    link_width_bytes: int = 1  # 8-bit links
    link_frequency_hz: int = 1_000_000_000
    router_pipeline_ns: int = 1  # per-router decision latency for scouts
    scout_retry_gap_ns: int = 100  # FC retry delay after a failed reservation
    max_scout_retries: int = 64
    pssd_bandwidth_factor: float = 2.0  # pSSD doubles channel bandwidth

    def __post_init__(self) -> None:
        if self.channel_rate <= 0:
            raise ConfigurationError("channel_rate must be positive")
        if self.link_width_bytes <= 0:
            raise ConfigurationError("link_width_bytes must be positive")
        if self.link_frequency_hz <= 0:
            raise ConfigurationError("link_frequency_hz must be positive")
        if self.pssd_bandwidth_factor <= 0:
            raise ConfigurationError("pssd_bandwidth_factor must be positive")

    @property
    def link_rate(self) -> int:
        """Mesh link bandwidth in bytes/second."""
        return self.link_width_bytes * self.link_frequency_hz

    @property
    def link_cycle_ns(self) -> float:
        return NS_PER_S / self.link_frequency_hz

    def channel_transfer_ns(self, size_bytes: int, bandwidth_factor: float = 1.0) -> int:
        """Serialization time of ``size_bytes`` on a shared channel."""
        if size_bytes < 0:
            raise ConfigurationError(f"negative transfer size: {size_bytes}")
        rate = self.channel_rate * bandwidth_factor
        return max(1, round(size_bytes * NS_PER_S / rate)) if size_bytes else 0

    def link_transfer_ns(self, size_bytes: int, distance_hops: int) -> int:
        """Equation (1) of the paper.

        T = [distance + transfer_size / link_width] * link_latency
        """
        if size_bytes < 0 or distance_hops < 0:
            raise ConfigurationError("negative transfer size or distance")
        flits = size_bytes / self.link_width_bytes
        return max(1, round((distance_hops + flits) * self.link_cycle_ns))


@dataclass(frozen=True)
class SsdConfig:
    """Everything needed to instantiate one simulated SSD."""

    name: str
    geometry: NandGeometry
    timings: NandTimings
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    queue_depth: int = 256
    gc_threshold_free_fraction: float = 0.05
    gc_stop_free_fraction: float = 0.08
    over_provisioning: float = 0.07
    ecc_latency_ns: int = 200  # FC ECC decode/encode pipeline latency
    seed: int = 42

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth must be >= 1")
        if not 0.0 < self.gc_threshold_free_fraction < 1.0:
            raise ConfigurationError("gc_threshold_free_fraction out of (0,1)")
        if not self.gc_threshold_free_fraction <= self.gc_stop_free_fraction < 1.0:
            raise ConfigurationError("gc_stop_free_fraction must be >= threshold")
        if not 0.0 <= self.over_provisioning < 0.5:
            raise ConfigurationError("over_provisioning out of [0, 0.5)")
        if self.ecc_latency_ns < 0:
            raise ConfigurationError("ecc_latency_ns must be >= 0")

    # Mesh geometry: one flash-controller per row, chips_per_channel columns.
    @property
    def mesh_rows(self) -> int:
        return self.geometry.channels

    @property
    def mesh_cols(self) -> int:
        return self.geometry.chips_per_channel

    @property
    def flash_controllers(self) -> int:
        """One flash controller per channel/row in every design."""
        return self.geometry.channels

    def with_geometry(self, channels: int, chips_per_channel: int) -> "SsdConfig":
        """Derive a config with a different FC-count x chips-per-row shape.

        Used by the Figure 15 sensitivity study (4x16, 8x8, 16x4) which keeps
        the total chip count constant while varying the controller count.
        """
        new_geometry = replace(
            self.geometry, channels=channels, chips_per_channel=chips_per_channel
        )
        return replace(self, geometry=new_geometry)

    def scaled(self, blocks_per_plane: int, pages_per_block: int) -> "SsdConfig":
        """Derive a capacity-scaled config (smaller address space for tests)."""
        new_geometry = replace(
            self.geometry,
            blocks_per_plane=blocks_per_plane,
            pages_per_block=pages_per_block,
        )
        return replace(self, geometry=new_geometry)

    def with_ftl_knobs(
        self,
        *,
        over_provisioning: Optional[float] = None,
        gc_threshold_free_fraction: Optional[float] = None,
        gc_stop_free_fraction: Optional[float] = None,
    ) -> "SsdConfig":
        """Derive a config with FTL knob overrides (``None`` = keep).

        The vehicle for spec-carried over-provisioning and GC-watermark
        sweeps: :class:`~repro.ssd.device.SsdDevice` applies the knobs it
        was constructed with through this helper, and validation re-runs
        via ``__post_init__`` so an out-of-range override fails exactly
        like an out-of-range config field.  With every override ``None``
        the config is returned unchanged (strict no-op).
        """
        overrides = {
            key: value
            for key, value in {
                "over_provisioning": over_provisioning,
                "gc_threshold_free_fraction": gc_threshold_free_fraction,
                "gc_stop_free_fraction": gc_stop_free_fraction,
            }.items()
            if value is not None
        }
        if not overrides:
            return self
        return replace(self, **overrides)

    def describe(self) -> str:
        geometry = self.geometry
        return (
            f"{self.name}: {geometry.channels}ch x {geometry.chips_per_channel}chips, "
            f"{geometry.dies_per_chip}die/{geometry.planes_per_die}pl, "
            f"page={geometry.page_size}B, tR={self.timings.read_ns}ns, "
            f"tPROG={self.timings.program_ns}ns, tBERS={self.timings.erase_ns}ns"
        )


def mesh_shape_for(config: SsdConfig) -> Tuple[int, int]:
    """(rows, cols) of the Venice/NoSSD mesh for a given SSD config."""
    return config.mesh_rows, config.mesh_cols
