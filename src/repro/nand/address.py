"""Physical addressing of the flash array.

A chip is identified by ``(channel, way)`` -- equivalently ``(row, col)`` in
the mesh designs, since the mesh places one channel's chips along one row
(one flash controller per row, Figure 5(b)).  Inside the chip, a page is
addressed by ``(die, plane, block, page)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.ssd_config import NandGeometry
from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class ChipAddress:
    """Location of a flash chip in the array: channel (row) and way (column)."""

    channel: int
    way: int

    def flat_index(self, geometry: NandGeometry) -> int:
        """Row-major flat chip id, as used by the 6-bit scout destination."""
        return self.channel * geometry.chips_per_channel + self.way

    @classmethod
    def from_flat(cls, index: int, geometry: NandGeometry) -> "ChipAddress":
        if not 0 <= index < geometry.total_chips:
            raise ConfigurationError(
                f"chip index {index} out of range [0, {geometry.total_chips})"
            )
        return cls(index // geometry.chips_per_channel, index % geometry.chips_per_channel)

    def validate(self, geometry: NandGeometry) -> None:
        if not 0 <= self.channel < geometry.channels:
            raise ConfigurationError(f"channel {self.channel} out of range")
        if not 0 <= self.way < geometry.chips_per_channel:
            raise ConfigurationError(f"way {self.way} out of range")


@dataclass(frozen=True, order=True)
class PhysicalPageAddress:
    """Full physical page address."""

    chip: ChipAddress
    die: int
    plane: int
    block: int
    page: int

    def validate(self, geometry: NandGeometry) -> None:
        self.chip.validate(geometry)
        if not 0 <= self.die < geometry.dies_per_chip:
            raise ConfigurationError(f"die {self.die} out of range")
        if not 0 <= self.plane < geometry.planes_per_die:
            raise ConfigurationError(f"plane {self.plane} out of range")
        if not 0 <= self.block < geometry.blocks_per_plane:
            raise ConfigurationError(f"block {self.block} out of range")
        if not 0 <= self.page < geometry.pages_per_block:
            raise ConfigurationError(f"page {self.page} out of range")

    def plane_flat_index(self, geometry: NandGeometry) -> int:
        """Flat plane id across the whole SSD (for allocator round-robin)."""
        chip_flat = self.chip.flat_index(geometry)
        return (chip_flat * geometry.dies_per_chip + self.die) * geometry.planes_per_die + self.plane

    def page_flat_index(self, geometry: NandGeometry) -> int:
        """Flat physical page number across the whole SSD."""
        plane_flat = self.plane_flat_index(geometry)
        return plane_flat * geometry.pages_per_plane + self.block * geometry.pages_per_block + self.page

    @classmethod
    def from_page_flat(cls, index: int, geometry: NandGeometry) -> "PhysicalPageAddress":
        if not 0 <= index < geometry.total_pages:
            raise ConfigurationError(f"page index {index} out of range")
        plane_flat, offset = divmod(index, geometry.pages_per_plane)
        block, page = divmod(offset, geometry.pages_per_block)
        die_flat, plane = divmod(plane_flat, geometry.planes_per_die)
        chip_flat, die = divmod(die_flat, geometry.dies_per_chip)
        return cls(
            chip=ChipAddress.from_flat(chip_flat, geometry),
            die=die,
            plane=plane,
            block=block,
            page=page,
        )

    def same_plane_offset(self, other: "PhysicalPageAddress") -> bool:
        """Whether two addresses can form a multi-plane operation.

        Planes in a die share peripheral circuitry, so they can operate
        concurrently only on pages/blocks at the *same offset* (§2.1).
        """
        return (
            self.chip == other.chip
            and self.die == other.die
            and self.plane != other.plane
            and self.block == other.block
            and self.page == other.page
        )
