"""Physical addressing of the flash array.

A chip is identified by ``(channel, way)`` -- equivalently ``(row, col)`` in
the mesh designs, since the mesh places one channel's chips along one row
(one flash controller per row, Figure 5(b)).  Inside the chip, a page is
addressed by ``(die, plane, block, page)``.

Both address types are immutable-by-convention value objects.  They are
hand-rolled rather than frozen dataclasses because they are materialised on
the FTL's per-page hot path: a frozen dataclass pays ``object.__setattr__``
per field on construction and builds a tuple per hash/eq probe, which
profiles as a top-ten cost of a whole simulation run.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config.ssd_config import NandGeometry
from repro.errors import ConfigurationError


class ChipAddress:
    """Location of a flash chip in the array: channel (row) and way (column)."""

    __slots__ = ("channel", "way")

    def __init__(self, channel: int, way: int) -> None:
        self.channel = channel
        self.way = way

    # value-object protocol (mirrors dataclass(frozen=True, order=True))
    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, ChipAddress):
            return NotImplemented
        return self.channel == other.channel and self.way == other.way

    def __lt__(self, other: "ChipAddress") -> bool:
        return (self.channel, self.way) < (other.channel, other.way)

    def __le__(self, other: "ChipAddress") -> bool:
        return (self.channel, self.way) <= (other.channel, other.way)

    def __hash__(self) -> int:
        return hash((self.channel, self.way))

    def __repr__(self) -> str:
        return f"ChipAddress(channel={self.channel}, way={self.way})"

    def flat_index(self, geometry: NandGeometry) -> int:
        """Row-major flat chip id, as used by the 6-bit scout destination."""
        return self.channel * geometry.chips_per_channel + self.way

    @classmethod
    def from_flat(cls, index: int, geometry: NandGeometry) -> "ChipAddress":
        if not 0 <= index < geometry.total_chips:
            raise ConfigurationError(
                f"chip index {index} out of range [0, {geometry.total_chips})"
            )
        key = divmod(index, geometry.chips_per_channel)
        address = _CHIP_CACHE.get(key)
        if address is None:
            address = _CHIP_CACHE[key] = cls(*key)
        return address

    def validate(self, geometry: NandGeometry) -> None:
        if not 0 <= self.channel < geometry.channels:
            raise ConfigurationError(f"channel {self.channel} out of range")
        if not 0 <= self.way < geometry.chips_per_channel:
            raise ConfigurationError(f"way {self.way} out of range")


# ChipAddress is compared by value, so instances are shared: the hot FTL
# translate path materialises one per page and this keeps that
# allocation-free.  Keyed by (channel, way) -- geometry only affects the
# range check, not the identity.
_CHIP_CACHE: Dict[Tuple[int, int], ChipAddress] = {}


class PhysicalPageAddress:
    """Full physical page address."""

    __slots__ = ("chip", "die", "plane", "block", "page")

    def __init__(
        self, chip: ChipAddress, die: int, plane: int, block: int, page: int
    ) -> None:
        self.chip = chip
        self.die = die
        self.plane = plane
        self.block = block
        self.page = page

    def _key(self) -> tuple:
        chip = self.chip
        return (chip.channel, chip.way, self.die, self.plane, self.block, self.page)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, PhysicalPageAddress):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: "PhysicalPageAddress") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "PhysicalPageAddress") -> bool:
        return self._key() <= other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"PhysicalPageAddress(chip={self.chip!r}, die={self.die}, "
            f"plane={self.plane}, block={self.block}, page={self.page})"
        )

    def validate(self, geometry: NandGeometry) -> None:
        self.chip.validate(geometry)
        if not 0 <= self.die < geometry.dies_per_chip:
            raise ConfigurationError(f"die {self.die} out of range")
        if not 0 <= self.plane < geometry.planes_per_die:
            raise ConfigurationError(f"plane {self.plane} out of range")
        if not 0 <= self.block < geometry.blocks_per_plane:
            raise ConfigurationError(f"block {self.block} out of range")
        if not 0 <= self.page < geometry.pages_per_block:
            raise ConfigurationError(f"page {self.page} out of range")

    def plane_flat_index(self, geometry: NandGeometry) -> int:
        """Flat plane id across the whole SSD (for allocator round-robin)."""
        chip_flat = self.chip.flat_index(geometry)
        return (chip_flat * geometry.dies_per_chip + self.die) * geometry.planes_per_die + self.plane

    def page_flat_index(self, geometry: NandGeometry) -> int:
        """Flat physical page number across the whole SSD."""
        plane_flat = self.plane_flat_index(geometry)
        return plane_flat * geometry.pages_per_plane + self.block * geometry.pages_per_block + self.page

    @classmethod
    def from_page_flat(cls, index: int, geometry: NandGeometry) -> "PhysicalPageAddress":
        if not 0 <= index < geometry.total_pages:
            raise ConfigurationError(f"page index {index} out of range")
        plane_flat, offset = divmod(index, geometry.pages_per_plane)
        block, page = divmod(offset, geometry.pages_per_block)
        die_flat, plane = divmod(plane_flat, geometry.planes_per_die)
        chip_flat, die = divmod(die_flat, geometry.dies_per_chip)
        return cls(
            chip=ChipAddress.from_flat(chip_flat, geometry),
            die=die,
            plane=plane,
            block=block,
            page=page,
        )

    def same_plane_offset(self, other: "PhysicalPageAddress") -> bool:
        """Whether two addresses can form a multi-plane operation.

        Planes in a die share peripheral circuitry, so they can operate
        concurrently only on pages/blocks at the *same offset* (§2.1).
        """
        return (
            self.chip == other.chip
            and self.die == other.die
            and self.plane != other.plane
            and self.block == other.block
            and self.page == other.page
        )
