"""NAND flash array substrate.

Models the physical hierarchy of §2.1: chip -> die -> plane -> block -> page,
with read/program/erase latencies, erase-before-write enforcement, per-block
wear accounting, and multi-plane operation legality rules.
"""

from repro.nand.address import PhysicalPageAddress, ChipAddress
from repro.nand.commands import FlashCommandKind, FlashCommand
from repro.nand.chip import FlashChip, FlashDie, FlashPlane, FlashBlock, PageState
from repro.nand.array import FlashArray

__all__ = [
    "PhysicalPageAddress",
    "ChipAddress",
    "FlashCommandKind",
    "FlashCommand",
    "FlashChip",
    "FlashDie",
    "FlashPlane",
    "FlashBlock",
    "PageState",
    "FlashArray",
]
