"""Flash command descriptors exchanged between flash controllers and chips."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List

from repro.nand.address import PhysicalPageAddress

_command_ids = itertools.count()


class FlashCommandKind(enum.Enum):
    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"

    @property
    def is_read(self) -> bool:
        return self is FlashCommandKind.READ

    @property
    def is_program(self) -> bool:
        return self is FlashCommandKind.PROGRAM

    @property
    def is_erase(self) -> bool:
        return self is FlashCommandKind.ERASE


@dataclass
class FlashCommand:
    """One die-level flash operation, possibly multi-plane.

    ``addresses`` holds one address per participating plane; a single-plane
    command has one entry.  All addresses of a multi-plane command must be on
    the same die at the same block/page offset (validated by the die).
    """

    kind: FlashCommandKind
    addresses: List[PhysicalPageAddress]
    command_id: int = field(default_factory=lambda: next(_command_ids))

    @property
    def primary(self) -> PhysicalPageAddress:
        return self.addresses[0]

    @property
    def plane_count(self) -> int:
        return len(self.addresses)

    @property
    def is_multi_plane(self) -> bool:
        return len(self.addresses) > 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        a = self.primary
        return (
            f"FlashCommand({self.kind.value}, chip=({a.chip.channel},{a.chip.way}), "
            f"die={a.die}, planes={self.plane_count}, block={a.block}, page={a.page})"
        )
