"""The full flash chip array: all chips of the SSD, indexed by address."""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.config.ssd_config import SsdConfig
from repro.errors import ConfigurationError
from repro.nand.address import ChipAddress, PhysicalPageAddress
from repro.nand.chip import FlashBlock, FlashChip, FlashDie, FlashPlane
from repro.sim.engine import Engine


class FlashArray:
    """Container and lookup helper for every flash chip in the SSD."""

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        self.config = config
        self.geometry = config.geometry
        self.chips: List[FlashChip] = []
        self._by_address: Dict[ChipAddress, FlashChip] = {}
        for channel in range(self.geometry.channels):
            for way in range(self.geometry.chips_per_channel):
                address = ChipAddress(channel, way)
                chip = FlashChip(engine, address, self.geometry, config.timings)
                self.chips.append(chip)
                self._by_address[address] = chip
        # Flat die list for the hot lookup path: chip-major, die-minor.
        # Indexing arithmetic replaces dict lookups keyed by a dataclass
        # (whose __hash__/__eq__ build tuples on every probe).
        self._dies_flat: List[FlashDie] = [
            die for chip in self.chips for die in chip.dies
        ]
        self._ways = self.geometry.chips_per_channel
        self._dies_per_chip = self.geometry.dies_per_chip

    def __iter__(self) -> Iterator[FlashChip]:
        return iter(self.chips)

    def __len__(self) -> int:
        return len(self.chips)

    def chip(self, address: ChipAddress) -> FlashChip:
        return self._by_address[address]

    def chip_by_flat(self, index: int) -> FlashChip:
        return self.chips[index]

    def die_for(self, address: PhysicalPageAddress) -> FlashDie:
        chip = address.chip
        return self._dies_flat[
            (chip.channel * self._ways + chip.way) * self._dies_per_chip + address.die
        ]

    def plane_for(self, address: PhysicalPageAddress) -> FlashPlane:
        return self.die_for(address).planes[address.plane]

    def block_for(self, address: PhysicalPageAddress) -> FlashBlock:
        chip = address.chip
        die = self._dies_flat[
            (chip.channel * self._ways + chip.way) * self._dies_per_chip + address.die
        ]
        return die.planes[address.plane].blocks[address.block]

    def set_die_failed(self, channel: int, way: int, die: int, failed: bool = True) -> None:
        """Mark one die failed/repaired (fault injection; bounds-checked).

        A failed die keeps servicing commands -- the simulator models
        latency, not data loss -- but every operation on it takes the
        degraded retry path in the transaction pipeline (DESIGN.md §7).
        """
        geometry = self.geometry
        if not (
            0 <= channel < geometry.channels
            and 0 <= way < geometry.chips_per_channel
            and 0 <= die < geometry.dies_per_chip
        ):
            raise ConfigurationError(
                f"die {channel}.{way}.{die} outside the "
                f"{geometry.channels}x{geometry.chips_per_channel}x"
                f"{geometry.dies_per_chip} array"
            )
        self._dies_flat[
            (channel * self._ways + way) * self._dies_per_chip + die
        ].failed = failed

    def failed_dies(self) -> int:
        """Number of dies currently marked failed."""
        return sum(1 for die in self._dies_flat if die.failed)

    def iter_planes(self) -> Iterator[tuple]:
        """Yield ``(chip, die, plane)`` triples in CWDP order."""
        for chip in self.chips:
            for die in chip.dies:
                for plane in die.planes:
                    yield chip, die, plane

    def total_valid_pages(self) -> int:
        return sum(plane.valid_pages for _, _, plane in self.iter_planes())

    def total_free_pages(self) -> int:
        return sum(plane.free_pages for _, _, plane in self.iter_planes())

    def max_erase_count(self) -> int:
        counts = [
            block.erase_count
            for _, _, plane in self.iter_planes()
            for block in plane.blocks
        ]
        return max(counts) if counts else 0
