"""Flash chip / die / plane / block / page models.

Responsibilities:

* enforce the NAND protocol: erase-before-write, sequential page programming
  within a block, erase at block granularity only (§2.1),
* keep page states (free / valid / invalid) so the FTL and garbage collector
  operate on real structures, not abstractions,
* serialise die occupancy: a die executes one command at a time; planes of a
  die may operate together only as a multi-plane command at the same offset,
* account per-block program/erase cycles for the wear-leveling policy.

Timing lives in the controller/fabric layers -- the chip exposes latencies
and a die ``Resource`` but never touches the event loop itself beyond that.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.config.ssd_config import NandGeometry, NandTimings
from repro.errors import NandProtocolError
from repro.nand.address import ChipAddress, PhysicalPageAddress
from repro.nand.commands import FlashCommand, FlashCommandKind
from repro.sim.engine import Engine
from repro.sim.resources import Resource


class PageState(enum.Enum):
    FREE = "free"
    VALID = "valid"
    INVALID = "invalid"


class FlashBlock:
    """A block: an erase unit holding ``pages_per_block`` pages.

    Two pointers track the block's fill state:

    * ``allocation_pointer`` -- pages handed out by the FTL allocator; the
      allocator reserves a page *before* the PROGRAM transaction travels the
      fabric, so concurrent in-flight writes never collide on one page,
    * ``programmed_count`` -- pages whose PROGRAM actually completed.

    NAND programs pages of a block in order.  The FTL reserves in order and
    issues in order; completion order across *different* blocks is free, and
    within a block the ordering check is enforced at reservation time.
    Direct (unreserved) programming auto-reserves and therefore must be
    strictly in-order, preserving the raw NAND protocol.
    """

    __slots__ = (
        "index",
        "pages_per_block",
        "page_states",
        "allocation_pointer",
        "programmed_count",
        "pending_programs",
        "erase_count",
        "valid_count",
        "_invalid_count",
        "plane",
    )

    def __init__(
        self, index: int, pages_per_block: int, plane: "FlashPlane" = None
    ) -> None:
        self.index = index
        self.pages_per_block = pages_per_block
        self.page_states: List[PageState] = [PageState.FREE] * pages_per_block
        self.allocation_pointer = 0  # next reservable page
        self.programmed_count = 0
        self.pending_programs = 0  # reserved but not yet programmed
        self.erase_count = 0
        self.valid_count = 0
        self._invalid_count = 0
        # Owning plane (None for standalone blocks in tests): every
        # allocation-pointer move is mirrored into the plane's aggregate
        # counter so the GC watermark check is O(1) instead of a sum over
        # all blocks on every completed write.
        self.plane = plane

    @property
    def write_pointer(self) -> int:
        """Highest page handed out so far (GC scans [0, write_pointer))."""
        return self.allocation_pointer

    @property
    def is_full(self) -> bool:
        return self.allocation_pointer >= self.pages_per_block

    @property
    def free_pages(self) -> int:
        return self.pages_per_block - self.allocation_pointer

    @property
    def invalid_count(self) -> int:
        return self._invalid_count

    @property
    def is_erased(self) -> bool:
        return self.allocation_pointer == 0

    def reserve_next_page(self) -> int:
        """Hand out the next programmable page (allocator path)."""
        if self.is_full:
            raise NandProtocolError(f"block {self.index}: reserve on full block")
        page = self.allocation_pointer
        self.allocation_pointer += 1
        self.pending_programs += 1
        if self.plane is not None:
            self.plane.allocated_pages += 1
        return page

    def program_page(self, page: int) -> None:
        if page >= self.allocation_pointer:
            # Direct, unreserved programming must follow NAND page order.
            if page != self.allocation_pointer:
                raise NandProtocolError(
                    f"block {self.index}: out-of-order program of page {page}, "
                    f"next programmable page is {self.allocation_pointer}"
                )
            self.allocation_pointer += 1
            self.pending_programs += 1
            if self.plane is not None:
                self.plane.allocated_pages += 1
        state = self.page_states[page]
        if state is PageState.VALID:
            raise NandProtocolError(
                f"block {self.index}: page {page} already programmed "
                "(erase-before-write violated)"
            )
        self.programmed_count += 1
        self.pending_programs -= 1
        if state is PageState.INVALID:
            # The logical page was overwritten while this program was in
            # flight (early invalidation): the cells get written, but the
            # data is stale on arrival.
            return
        self.page_states[page] = PageState.VALID
        self.valid_count += 1

    def invalidate_page(self, page: int) -> None:
        state = self.page_states[page]
        if state is PageState.VALID:
            self.page_states[page] = PageState.INVALID
            self.valid_count -= 1
            self._invalid_count += 1
            return
        if state is PageState.FREE and page < self.allocation_pointer:
            # Early invalidation of a reserved, still-in-flight page.
            self.page_states[page] = PageState.INVALID
            self._invalid_count += 1
            return
        raise NandProtocolError(
            f"block {self.index}: invalidating page {page} in state {state.value}"
        )

    def read_page(self, page: int, strict: bool = False) -> PageState:
        state = self.page_states[page]
        if strict and state is PageState.FREE:
            raise NandProtocolError(
                f"block {self.index}: reading unwritten page {page}"
            )
        return state

    def erase(self) -> None:
        if self.pending_programs > 0:
            raise NandProtocolError(
                f"block {self.index}: erase with {self.pending_programs} "
                "in-flight programs"
            )
        if self.plane is not None:
            self.plane.allocated_pages -= self.allocation_pointer
        self.page_states = [PageState.FREE] * self.pages_per_block
        self.allocation_pointer = 0
        self.programmed_count = 0
        self.valid_count = 0
        self._invalid_count = 0
        self.erase_count += 1

    def restore(self, pages: str, erase_count: int) -> None:
        """Restore a checkpointed fill state onto a pristine block.

        ``pages`` is the snapshot encoding used by
        :mod:`repro.sim.checkpoint`: one character per programmed page,
        ``'v'`` for valid and ``'i'`` for invalid, in page order.  The
        block must be pristine (never programmed or erased) -- restore is
        a deserialization path, not a runtime mutation -- and the encoding
        is validated so a corrupt snapshot cannot seed a block whose
        counters violate ``valid + invalid == allocation_pointer``.
        """
        if (
            self.allocation_pointer
            or self.programmed_count
            or self.pending_programs
            or self.erase_count
        ):
            raise NandProtocolError(
                f"block {self.index}: restore onto a non-pristine block"
            )
        if len(pages) > self.pages_per_block:
            raise NandProtocolError(
                f"block {self.index}: snapshot has {len(pages)} pages, "
                f"block holds {self.pages_per_block}"
            )
        if pages.strip("vi"):
            raise NandProtocolError(
                f"block {self.index}: bad page states {pages!r} "
                "(must be 'v'/'i')"
            )
        if erase_count < 0:
            raise NandProtocolError(
                f"block {self.index}: negative snapshot erase count "
                f"{erase_count}"
            )
        for page, state in enumerate(pages):
            self.page_states[page] = (
                PageState.VALID if state == "v" else PageState.INVALID
            )
        filled = len(pages)
        self.allocation_pointer = filled
        self.programmed_count = filled
        self.erase_count = erase_count
        self.valid_count = pages.count("v")
        self._invalid_count = filled - self.valid_count
        if self.plane is not None:
            self.plane.allocated_pages += filled


class FlashPlane:
    """A plane: blocks_per_plane blocks sharing sense amplifiers."""

    __slots__ = ("index", "blocks", "reads", "programs", "erases", "allocated_pages")

    def __init__(self, index: int, geometry: NandGeometry) -> None:
        self.index = index
        self.allocated_pages = 0  # maintained by the blocks' pointer moves
        self.blocks: List[FlashBlock] = [
            FlashBlock(block, geometry.pages_per_block, plane=self)
            for block in range(geometry.blocks_per_plane)
        ]
        self.reads = 0
        self.programs = 0
        self.erases = 0

    def block(self, index: int) -> FlashBlock:
        return self.blocks[index]

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.allocated_pages

    @property
    def valid_pages(self) -> int:
        return sum(block.valid_count for block in self.blocks)

    @property
    def total_pages(self) -> int:
        return len(self.blocks) * self.blocks[0].pages_per_block if self.blocks else 0


class FlashDie:
    """A die: the unit of command concurrency.

    The die owns a single-capacity :class:`Resource`; any command (single- or
    multi-plane) occupies the die for its full operation latency.  Planes may
    only be ganged when every address shares the block/page offset (§2.1).
    """

    def __init__(
        self,
        engine: Engine,
        chip_address: ChipAddress,
        die_index: int,
        geometry: NandGeometry,
        timings: NandTimings,
    ) -> None:
        self.chip_address = chip_address
        self.index = die_index
        self.geometry = geometry
        self.timings = timings
        self.planes: List[FlashPlane] = [
            FlashPlane(plane, geometry) for plane in range(geometry.planes_per_die)
        ]
        self.resource = Resource(
            engine, f"die({chip_address.channel},{chip_address.way},{die_index})"
        )
        self.commands_executed = 0
        # Fault injection: a failed die still services commands (the
        # simulator models latency, not data loss) but every operation takes
        # the degraded retry path -- see TransactionPipeline and DESIGN.md §7.
        self.failed = False

    def operation_latency_ns(self, command: FlashCommand) -> int:
        """Latency of executing the command on this die.

        Multi-plane operations complete in the latency of a single operation
        -- that is their whole point (§2.1).
        """
        if command.kind is FlashCommandKind.READ:
            return self.timings.read_ns
        if command.kind is FlashCommandKind.PROGRAM:
            return self.timings.program_ns
        return self.timings.erase_ns

    def validate_command(self, command: FlashCommand) -> None:
        addresses = command.addresses
        if not addresses:
            raise NandProtocolError("command with no addresses")
        if len(addresses) == 1:
            # Single-plane command (the dominant case): no plane-set or
            # shared-offset checks apply.
            address = addresses[0]
            address.validate(self.geometry)
            if address.chip != self.chip_address or address.die != self.index:
                raise NandProtocolError(
                    f"command address {address} not on die "
                    f"{self.chip_address}/{self.index}"
                )
            return
        primary = command.primary
        seen_planes = set()
        for address in command.addresses:
            address.validate(self.geometry)
            if address.chip != self.chip_address or address.die != self.index:
                raise NandProtocolError(
                    f"command address {address} not on die {self.chip_address}/{self.index}"
                )
            if address.plane in seen_planes:
                raise NandProtocolError("duplicate plane in multi-plane command")
            seen_planes.add(address.plane)
            if command.is_multi_plane and (
                address.block != primary.block or address.page != primary.page
            ):
                raise NandProtocolError(
                    "multi-plane command addresses must share block/page offset"
                )

    def apply_command(self, command: FlashCommand, strict_reads: bool = False) -> None:
        """Mutate plane/block/page state according to the command."""
        self.validate_command(command)
        self.commands_executed += 1
        for address in command.addresses:
            plane = self.planes[address.plane]
            block = plane.block(address.block)
            if command.kind is FlashCommandKind.READ:
                plane.reads += 1
                block.read_page(address.page, strict=strict_reads)
            elif command.kind is FlashCommandKind.PROGRAM:
                plane.programs += 1
                block.program_page(address.page)
            else:
                plane.erases += 1
                block.erase()


class FlashChip:
    """A flash chip: one or more dies behind one set of I/O pins."""

    def __init__(
        self,
        engine: Engine,
        address: ChipAddress,
        geometry: NandGeometry,
        timings: NandTimings,
    ) -> None:
        self.address = address
        self.geometry = geometry
        self.timings = timings
        self.dies: List[FlashDie] = [
            FlashDie(engine, address, die, geometry, timings)
            for die in range(geometry.dies_per_chip)
        ]

    def die(self, index: int) -> FlashDie:
        return self.dies[index]

    @property
    def flat_index(self) -> int:
        return self.address.flat_index(self.geometry)

    def erase_counts(self) -> Dict[int, int]:
        """Total erase count per die (wear statistics)."""
        return {
            die.index: sum(block.erase_count for plane in die.planes for block in plane.blocks)
            for die in self.dies
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlashChip({self.address.channel},{self.address.way})"
