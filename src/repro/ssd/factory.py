"""Fabric factory: instantiate the communication substrate for a design."""

from __future__ import annotations

from typing import List

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.interconnect.base import Fabric
from repro.interconnect.ideal import IdealFabric
from repro.interconnect.nossd import NossdFabric
from repro.interconnect.pnssd import PnssdFabric
from repro.interconnect.shared_bus import BaselineFabric, PssdFabric
from repro.sim.engine import Engine
from repro.venice.fabric import VeniceFabric

_FABRICS = {
    DesignKind.BASELINE: BaselineFabric,
    DesignKind.PSSD: PssdFabric,
    DesignKind.PNSSD: PnssdFabric,
    DesignKind.NOSSD: NossdFabric,
    DesignKind.VENICE: VeniceFabric,
    DesignKind.IDEAL: IdealFabric,
}


def build_fabric(engine: Engine, config: SsdConfig, design: DesignKind) -> Fabric:
    """Instantiate the fabric implementing ``design`` for ``config``."""
    return _FABRICS[design](engine, config)


def design_names() -> List[str]:
    return [kind.value for kind in DesignKind]


def supports_geometry(design: DesignKind, config: SsdConfig) -> bool:
    """pnSSD only exists for square arrays (§6.5 footnote); others always."""
    if design is DesignKind.PNSSD:
        return config.geometry.channels == config.geometry.chips_per_channel
    return True
