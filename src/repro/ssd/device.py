"""The simulated SSD device: end-to-end request service.

Assembles the full stack -- NVMe queue pairs, FTL, transaction pipeline over
the selected fabric, garbage collector, wear leveler, metrics, and energy
accounting -- and replays workload traces against it.

Dispatch model: the host rings a doorbell after posting to a submission
queue; the device fetches round-robin across queues while its outstanding
request count is below the device queue depth, and re-dispatches whenever a
request completes.  Each request fans out into per-page flash transactions
serviced concurrently (that concurrency is what exposes path conflicts).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.errors import GarbageCollectionError
from repro.controller.ecc import EccEngine
from repro.controller.pipeline import TransactionPipeline
from repro.ftl.allocator import AllocationStrategy
from repro.ftl.cache import DramCache
from repro.ftl.ftl import Ftl
from repro.ftl.gc import GarbageCollector
from repro.ftl.wear_leveling import WearLeveler
from repro.hil.host import TraceReplayHost
from repro.hil.nvme import NvmeQueuePair
from repro.hil.request import IoRequest
from repro.metrics.collector import MetricsCollector, RunResult
from repro.nand.array import FlashArray
from repro.power.models import EnergyAccountant, EnergyBreakdown, PowerModel
from repro.sim.engine import AllOf, Engine
from repro.ssd.factory import build_fabric


class SsdDevice:
    """One simulated SSD instance (single-use: one trace per device)."""

    def __init__(
        self,
        config: SsdConfig,
        design: DesignKind,
        *,
        queue_pairs: int = 4,
        enable_gc: bool = True,
        enable_wear_leveling: bool = False,
        cache: Optional[DramCache] = None,
        allocation: AllocationStrategy = AllocationStrategy.CWDP,
        power_model: Optional[PowerModel] = None,
        multi_plane_writes: bool = True,
        exact_stats: Optional[bool] = None,
    ) -> None:
        self.config = config
        self.design = design
        self.engine = Engine()
        self.array = FlashArray(self.engine, config)
        self.fabric = build_fabric(self.engine, config, design)
        self.ecc = EccEngine(config.ecc_latency_ns, seed=config.seed)
        self.pipeline = TransactionPipeline(
            self.engine, config, self.array, self.fabric, ecc=self.ecc
        )
        self.ftl = Ftl(
            config,
            self.array,
            strategy=allocation,
            cache=cache,
            multi_plane_writes=multi_plane_writes,
        )
        self.gc = GarbageCollector(
            self.engine, config, self.array, self.ftl.mapping,
            self.ftl.allocator, self.pipeline,
        )
        self.wear_leveler = WearLeveler(
            self.engine, self.array, self.ftl.mapping,
            self.ftl.allocator, self.pipeline,
            enabled=enable_wear_leveling,
        )
        self.enable_gc = enable_gc
        self.queues: List[NvmeQueuePair] = [
            NvmeQueuePair(queue_id, depth=config.queue_depth * 4)
            for queue_id in range(max(1, queue_pairs))
        ]
        self.metrics = MetricsCollector(exact_stats=exact_stats)
        self.energy_accountant = EnergyAccountant(power_model or PowerModel())
        self._outstanding = 0
        self._next_queue = 0
        self._max_write_stall_retries = 1000
        self._write_stall_pause_ns = 200_000  # 0.2 ms per GC-throttle pause

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def on_doorbell(self) -> None:
        """Host posted new work (or a request finished): try to dispatch."""
        while self._outstanding < self.config.queue_depth:
            request = self._fetch_round_robin()
            if request is None:
                return
            self._outstanding += 1
            # Static process name: per-request f-strings are pure allocation
            # on the dispatch hot path (request identity lives on the
            # IoRequest itself).
            self.engine.process(self._serve(request), name="serve")

    def _fetch_round_robin(self) -> Optional[IoRequest]:
        for offset in range(len(self.queues)):
            queue = self.queues[(self._next_queue + offset) % len(self.queues)]
            request = queue.fetch()
            if request is not None:
                self._next_queue = (self._next_queue + offset + 1) % len(self.queues)
                return request
        return None

    def _serve(self, request: IoRequest) -> Generator:
        transactions = None
        stall_retries = 0
        while transactions is None:
            try:
                if request.is_read:
                    transactions = self.ftl.translate_read(
                        request.offset_bytes, request.size_bytes
                    )
                else:
                    transactions = self.ftl.translate_write(
                        request.offset_bytes, request.size_bytes
                    )
            except GarbageCollectionError:
                # Write cliff: no host-allocatable page anywhere.  A real
                # FTL throttles the host while garbage collection frees
                # space; kick GC on every plane and retry after a pause.
                stall_retries += 1
                if stall_retries > self._max_write_stall_retries:
                    raise
                if self.enable_gc:
                    for plane in range(self.ftl.allocator.plane_count()):
                        self.gc.maybe_trigger(plane, force=True)
                yield self._write_stall_pause_ns
        request.transactions_total = len(transactions)

        if transactions:
            if len(transactions) == 1:
                # Single-transaction fan-out: joining the process directly is
                # event-for-event identical to a one-child AllOf, minus the
                # join bookkeeping (the common case for small reads).
                yield self.engine.process(
                    self.pipeline.service(transactions[0]), name="txn"
                )
            else:
                processes = [
                    self.engine.process(self.pipeline.service(transaction), name="txn")
                    for transaction in transactions
                ]
                yield AllOf(processes)

        for transaction in transactions:
            request.path_conflict = request.path_conflict or transaction.path_conflict
            request.waited_for_path = (
                request.waited_for_path or transaction.waited_for_path
            )

        queue = self.queues[request.queue_id % len(self.queues)]
        queue.complete(request, self.engine.now)
        self.metrics.record_request(request)
        self._outstanding -= 1

        if self.enable_gc:
            for plane_flat in self.ftl.planes_touched_by(transactions):
                self.gc.maybe_trigger(plane_flat)
        self.wear_leveler.maybe_trigger()
        self.on_doorbell()

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #

    def precondition(self, fill_fraction: float) -> int:
        """Timing-free fill of the logical space before replay."""
        return self.ftl.precondition(fill_fraction)

    def run_trace(
        self,
        requests: Sequence[IoRequest],
        workload_name: str = "trace",
        *,
        with_cdf: bool = False,
        max_events: Optional[int] = None,
    ) -> RunResult:
        """Replay a trace to completion and return the run's metrics."""
        for request in requests:
            request.reset_service_state()
        host = TraceReplayHost(self.engine, self.queues, self.on_doorbell)
        self.engine.process(host.replay(requests), name="host-replay")
        self.engine.run(max_events=max_events)
        energy = self._account_energy()
        return self.metrics.finalize(
            design=self.design.value,
            config_name=self.config.name,
            workload=workload_name,
            energy_mj=energy.total_mj,
            average_power_mw=energy.average_power_mw(self.metrics.execution_time_ns),
            with_cdf=with_cdf,
            extra={
                "fabric_transfers": float(self.fabric.stats.transfers),
                "fabric_conflicted": float(self.fabric.stats.conflicted_transfers),
                "gc_blocks_reclaimed": float(self.gc.blocks_reclaimed),
                "gc_pages_migrated": float(self.gc.pages_migrated),
                "scout_attempts": float(self.fabric.stats.scout_attempts_total),
                "scout_failures": float(self.fabric.stats.scout_failures_total),
            },
        )

    def _account_energy(self) -> EnergyBreakdown:
        timings = self.config.timings
        return self.energy_accountant.account(
            reads=self.pipeline.reads_completed,
            programs=self.pipeline.programs_completed,
            erases=self.pipeline.erases_completed,
            read_ns=timings.read_ns,
            program_ns=timings.program_ns,
            erase_ns=timings.erase_ns,
            fabric_stats=self.fabric.stats,
            execution_time_ns=max(1, self.metrics.execution_time_ns),
        )
