"""The simulated SSD device: end-to-end request service.

Assembles the full stack -- NVMe queue pairs, FTL, transaction pipeline over
the selected fabric, garbage collector, wear leveler, metrics, and energy
accounting -- and replays workload traces against it.

Dispatch model: the host rings a doorbell after posting to a submission
queue; the device fetches round-robin across queues while its outstanding
request count is below the device queue depth, and re-dispatches whenever a
request completes.  Each request fans out into per-page flash transactions
serviced concurrently (that concurrency is what exposes path conflicts).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Union

from repro.config.ssd_config import NS_PER_S, DesignKind, SsdConfig
from repro.errors import ConfigurationError, GarbageCollectionError
from repro.controller.ecc import EccEngine
from repro.controller.pipeline import TransactionPipeline
from repro.ftl.allocator import AllocationStrategy
from repro.ftl.cache import DramCache
from repro.ftl.ftl import Ftl
from repro.ftl.gc import GarbageCollector
from repro.ftl.wear_leveling import WearLeveler
from repro.hil.host import TraceReplayHost
from repro.hil.nvme import NvmeQueuePair
from repro.hil.request import IoRequest
from repro.metrics.collector import MetricsCollector, RunResult
from repro.nand.array import FlashArray
from repro.power.models import EnergyAccountant, EnergyBreakdown, PowerModel
from repro.sim.convergence import ConvergenceMonitor, EarlyStopPolicy
from repro.sim.engine import AllOf, Engine
from repro.sim.faults import FaultInjector, FaultSchedule, FaultSink
from repro.ssd.factory import build_fabric


class _DeviceFaultSink(FaultSink):
    """Routes injected fault transitions to the owning device component."""

    __slots__ = ("device",)

    def __init__(self, device: "SsdDevice") -> None:
        self.device = device

    def on_link_fault(self, a, b, down: bool) -> None:
        self.device.fabric.apply_link_fault(a, b, down)

    def on_router_fault(self, node, down: bool) -> None:
        self.device.fabric.apply_router_fault(node, down)

    def on_die_fault(self, channel: int, way: int, die: int, down: bool) -> None:
        self.device.array.set_die_failed(channel, way, die, down)

    def on_ecc_burst_start(self, rate: float) -> None:
        self.device.ecc.begin_burst(rate)

    def on_ecc_burst_end(self) -> None:
        self.device.ecc.end_burst()


class SsdDevice:
    """One simulated SSD instance (single-use: one trace per device)."""

    def __init__(
        self,
        config: SsdConfig,
        design: DesignKind,
        *,
        queue_pairs: int = 4,
        enable_gc: bool = True,
        enable_wear_leveling: bool = False,
        cache: Optional[DramCache] = None,
        allocation: AllocationStrategy = AllocationStrategy.CWDP,
        power_model: Optional[PowerModel] = None,
        multi_plane_writes: bool = True,
        exact_stats: Optional[bool] = None,
        faults: Optional[Union[str, FaultSchedule]] = None,
        export_histogram: bool = False,
        export_tenant_histograms: bool = False,
        over_provisioning: Optional[float] = None,
        gc_threshold_free_fraction: Optional[float] = None,
        gc_stop_free_fraction: Optional[float] = None,
    ) -> None:
        # FTL knob overrides ride the spec's device_kwargs (digest-joining);
        # every override None leaves the config object -- and therefore every
        # digest and result -- exactly as before the knobs existed.
        config = config.with_ftl_knobs(
            over_provisioning=over_provisioning,
            gc_threshold_free_fraction=gc_threshold_free_fraction,
            gc_stop_free_fraction=gc_stop_free_fraction,
        )
        self.config = config
        self.design = design
        self.engine = Engine()
        self.array = FlashArray(self.engine, config)
        self.fabric = build_fabric(self.engine, config, design)
        self.ecc = EccEngine(config.ecc_latency_ns, seed=config.seed)
        self.pipeline = TransactionPipeline(
            self.engine, config, self.array, self.fabric, ecc=self.ecc
        )
        self.ftl = Ftl(
            config,
            self.array,
            strategy=allocation,
            cache=cache,
            multi_plane_writes=multi_plane_writes,
        )
        self.gc = GarbageCollector(
            self.engine, config, self.array, self.ftl.mapping,
            self.ftl.allocator, self.pipeline,
        )
        self.wear_leveler = WearLeveler(
            self.engine, self.array, self.ftl.mapping,
            self.ftl.allocator, self.pipeline,
            enabled=enable_wear_leveling,
        )
        self.enable_gc = enable_gc
        self.queues: List[NvmeQueuePair] = [
            NvmeQueuePair(queue_id, depth=config.queue_depth * 4)
            for queue_id in range(max(1, queue_pairs))
        ]
        self.metrics = MetricsCollector(
            exact_stats=exact_stats,
            track_tenants=bool(export_tenant_histograms),
        )
        # Fleet roll-ups merge per-device latency distributions: with
        # export_histogram the RunResult carries the recorder's payload
        # (omitted otherwise, keeping ordinary results byte-identical).
        # export_tenant_histograms additionally exports one recorder per
        # tenant of the fleet fan-out, for QoS victim/burst roll-ups.
        self.export_histogram = bool(export_histogram)
        self.export_tenant_histograms = bool(export_tenant_histograms)
        self.energy_accountant = EnergyAccountant(power_model or PowerModel())
        self._outstanding = 0
        self._next_queue = 0
        # Steady-state early-stop (armed per run_trace call): when the
        # monitor declares convergence the device stops fetching; in-flight
        # requests drain and the host stops submitting.
        self._monitor: Optional[ConvergenceMonitor] = None
        self._halted = False
        self._max_write_stall_retries = 1000
        self._write_stall_pause_ns = 200_000  # 0.2 ms per GC-throttle pause
        # Write-cliff telemetry: how often host writes stalled on allocation
        # and for how much simulated time (the "GC stall time" extra).
        self.write_stalls = 0
        self.write_stall_ns = 0
        # Fault injection: an empty schedule is a strict no-op (no injector
        # is armed, no fault metrics are emitted, results are bit-identical
        # to a device constructed without the argument).
        if isinstance(faults, str):
            faults = FaultSchedule.parse(faults)
        self.faults = faults if faults is not None else FaultSchedule()
        self._validate_faults()
        self.fault_injector: Optional[FaultInjector] = None

    def _validate_faults(self) -> None:
        """Bounds-check every fault target against this device's geometry."""
        geometry = self.config.geometry
        rows, cols = self.config.mesh_rows, self.config.mesh_cols
        for event in self.faults:
            if event.link is not None:
                for node in event.link:
                    if not (0 <= node[0] < rows and 0 <= node[1] < cols):
                        raise ConfigurationError(
                            f"fault link endpoint {node} outside the "
                            f"{rows}x{cols} chip grid"
                        )
            if event.node is not None:
                if not (0 <= event.node[0] < rows and 0 <= event.node[1] < cols):
                    raise ConfigurationError(
                        f"fault router {event.node} outside the "
                        f"{rows}x{cols} chip grid"
                    )
            if event.die is not None:
                channel, way, die = event.die
                if not (
                    0 <= channel < geometry.channels
                    and 0 <= way < geometry.chips_per_channel
                    and 0 <= die < geometry.dies_per_chip
                ):
                    raise ConfigurationError(
                        f"fault die {channel}.{way}.{die} outside the "
                        f"{geometry.channels}x{geometry.chips_per_channel}x"
                        f"{geometry.dies_per_chip} array"
                    )

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def on_doorbell(self) -> None:
        """Host posted new work (or a request finished): try to dispatch."""
        if self._halted:
            return
        while self._outstanding < self.config.queue_depth:
            request = self._fetch_round_robin()
            if request is None:
                return
            self._outstanding += 1
            # Static process name: per-request f-strings are pure allocation
            # on the dispatch hot path (request identity lives on the
            # IoRequest itself).
            self.engine.process(self._serve(request), name="serve")

    def _fetch_round_robin(self) -> Optional[IoRequest]:
        for offset in range(len(self.queues)):
            queue = self.queues[(self._next_queue + offset) % len(self.queues)]
            request = queue.fetch()
            if request is not None:
                self._next_queue = (self._next_queue + offset + 1) % len(self.queues)
                return request
        return None

    def _serve(self, request: IoRequest) -> Generator:
        transactions = None
        stall_retries = 0
        while transactions is None:
            try:
                if request.is_read:
                    transactions = self.ftl.translate_read(
                        request.offset_bytes, request.size_bytes
                    )
                else:
                    transactions = self.ftl.translate_write(
                        request.offset_bytes, request.size_bytes
                    )
            except GarbageCollectionError:
                # Write cliff: no host-allocatable page anywhere.  A real
                # FTL throttles the host while garbage collection frees
                # space; kick GC on every plane and retry after a pause.
                stall_retries += 1
                if stall_retries > self._max_write_stall_retries:
                    raise
                if self.enable_gc:
                    for plane in range(self.ftl.allocator.plane_count()):
                        self.gc.maybe_trigger(plane, force=True)
                self.write_stalls += 1
                self.write_stall_ns += self._write_stall_pause_ns
                yield self._write_stall_pause_ns
        request.transactions_total = len(transactions)

        if transactions:
            if len(transactions) == 1:
                # Single-transaction fan-out: joining the process directly is
                # event-for-event identical to a one-child AllOf, minus the
                # join bookkeeping (the common case for small reads).
                yield self.engine.process(
                    self.pipeline.service(transactions[0]), name="txn"
                )
            else:
                processes = [
                    self.engine.process(self.pipeline.service(transaction), name="txn")
                    for transaction in transactions
                ]
                yield AllOf(processes)

        for transaction in transactions:
            request.path_conflict = request.path_conflict or transaction.path_conflict
            request.waited_for_path = (
                request.waited_for_path or transaction.waited_for_path
            )

        queue = self.queues[request.queue_id % len(self.queues)]
        queue.complete(request, self.engine.now)
        self.metrics.record_request(request)
        if (self._monitor is not None and not self._halted
                and self._monitor.observe()):
            self._halted = True
        self._outstanding -= 1

        if self.enable_gc:
            for plane_flat in self.ftl.planes_touched_by(transactions):
                self.gc.maybe_trigger(plane_flat)
        self.wear_leveler.maybe_trigger()
        self.on_doorbell()

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #

    def precondition(self, fill_fraction: float) -> int:
        """Timing-free fill of the logical space before replay."""
        return self.ftl.precondition(fill_fraction)

    def churn(self, churn_fraction: float) -> int:
        """Timing-free overwrite of a fraction of the preconditioned pages.

        The warm-up churn stage (see :class:`~repro.sim.checkpoint.WarmupPhase`):
        spreads invalid pages across closed blocks so the measured phase
        starts in GC steady state.  Seeded by the device config, like every
        other deterministic stream.
        """
        return self.ftl.churn(churn_fraction, seed=self.config.seed)

    def run_trace(
        self,
        requests: Sequence[IoRequest],
        workload_name: str = "trace",
        *,
        with_cdf: bool = False,
        max_events: Optional[int] = None,
        allow_empty: bool = False,
        early_stop: Optional[Union[str, EarlyStopPolicy]] = None,
    ) -> RunResult:
        """Replay a trace to completion and return the run's metrics.

        With a non-empty fault schedule the injector is armed before replay
        (fault events interleave deterministically with I/O events) and the
        result's ``extra`` dict gains the fault telemetry keys
        (``requests_stalled``, ``blocked_transfers``, ``degraded_die_ops``,
        ``ecc_decode_retries``, ``ecc_uncorrectable``, ``fault_events``);
        a run in which every request stalled finalizes to an all-zero
        result instead of raising.  Sustained-write telemetry
        (``host_pages_written``, ``gc_pages_written``, ``gc_invocations``,
        ``gc_erases``, ``gc_write_stalls``, ``gc_stall_ns``,
        ``write_amplification``, ``wear_erase_min/max/mean``,
        ``wear_migrations``) appears in ``extra`` only when garbage
        collection actually collected, wear leveling is armed, or a host
        write stalled -- read-dominated runs keep their historical key
        set.  ``allow_empty`` extends the all-zero
        outcome to an empty (or fully-stalled) request list on a healthy
        device -- fleet members whose dispatcher share is empty use it.

        ``early_stop`` arms a steady-state convergence monitor (policy
        grammar or :class:`~repro.sim.convergence.EarlyStopPolicy`): once
        the streaming p50/p99 quantiles stabilise, replay halts and
        throughput, execution time, and energy are extrapolated to the
        full request list (quantiles are reported from the simulated
        prefix unscaled).  The result gains
        ``extra["early_stop_simulated_requests"]`` /
        ``extra["early_stop_converged"]`` recording the truth.  Note that
        under faults the ``requests_stalled`` telemetry counts the
        *unsimulated* tail as stalled; exact runs are authoritative for
        that counter.  ``None`` is a strict no-op (exact replay).
        """
        for request in requests:
            request.reset_service_state()
        if self.faults:
            self.fault_injector = FaultInjector(
                self.engine, self.faults, _DeviceFaultSink(self)
            )
            self.fault_injector.arm()
        monitor: Optional[ConvergenceMonitor] = None
        stop = None
        if early_stop is not None:
            policy = (
                EarlyStopPolicy.parse(early_stop)
                if isinstance(early_stop, str)
                else early_stop
            )
            monitor = ConvergenceMonitor(policy, self.metrics.latencies)
            self._monitor = monitor
            self._halted = False
            stop = lambda: self._halted  # noqa: E731 - engine-polled closure
        host = TraceReplayHost(self.engine, self.queues, self.on_doorbell)
        self.engine.process(host.replay(requests, stop=stop), name="host-replay")
        self.engine.run(max_events=max_events)
        energy = self._account_energy()
        extra = {
            "fabric_transfers": float(self.fabric.stats.transfers),
            "fabric_conflicted": float(self.fabric.stats.conflicted_transfers),
        }
        if self.enable_gc:
            # Emitted only when GC is armed, matching the fault-telemetry
            # convention (keys appear iff the subsystem could have acted).
            # enable_gc defaults on, so ordinary results keep these keys in
            # their historical position and stay byte-identical.
            extra["gc_blocks_reclaimed"] = float(self.gc.blocks_reclaimed)
            extra["gc_pages_migrated"] = float(self.gc.pages_migrated)
        extra["scout_attempts"] = float(self.fabric.stats.scout_attempts_total)
        extra["scout_failures"] = float(self.fabric.stats.scout_failures_total)
        if self.gc.invocations or self.wear_leveler.enabled or self.write_stalls:
            # Sustained-write telemetry, emitted only when the write
            # machinery actually engaged (GC collected, wear leveling is
            # armed, or a host write stalled on allocation) so read-
            # dominated runs stay byte-identical to their historical form.
            wear = self.wear_leveler.wear_stats()
            host_pages = float(self.ftl.host_writes)
            internal_pages = float(
                self.gc.pages_written + self.wear_leveler.migrations
            )
            extra.update(
                {
                    "host_pages_written": host_pages,
                    "gc_pages_written": float(self.gc.pages_written),
                    "gc_invocations": float(self.gc.invocations),
                    "gc_erases": float(self.gc.erases_issued),
                    "gc_write_stalls": float(self.write_stalls),
                    "gc_stall_ns": float(self.write_stall_ns),
                    "write_amplification": (
                        (host_pages + internal_pages) / host_pages
                        if host_pages
                        else 1.0
                    ),
                    "wear_erase_min": float(wear.minimum),
                    "wear_erase_max": float(wear.maximum),
                    "wear_erase_mean": float(wear.mean),
                    "wear_migrations": float(self.wear_leveler.migrations),
                }
            )
        if self.faults:
            extra.update(
                {
                    "fault_events": float(len(self.faults)),
                    "requests_stalled": float(
                        len(requests) - self.metrics.requests_completed
                    ),
                    "blocked_transfers": float(self.fabric.stats.blocked_transfers),
                    "degraded_die_ops": float(self.pipeline.degraded_ops),
                    "ecc_decode_retries": float(self.ecc.decode_retries),
                    "ecc_uncorrectable": float(self.ecc.uncorrectable),
                }
            )
        result = self.metrics.finalize(
            design=self.design.value,
            config_name=self.config.name,
            workload=workload_name,
            energy_mj=energy.total_mj,
            average_power_mw=energy.average_power_mw(self.metrics.execution_time_ns),
            with_cdf=with_cdf,
            with_histogram=self.export_histogram,
            extra=extra,
            allow_empty=bool(self.faults) or allow_empty,
        )
        if monitor is not None:
            result = self._extrapolate(result, len(requests), monitor)
        return result

    def _extrapolate(
        self, result: RunResult, total_requests: int,
        monitor: ConvergenceMonitor,
    ) -> RunResult:
        """Scale an early-stopped result to the requested horizon.

        Throughput-like quantities (completions, execution time, energy)
        scale linearly in steady state; latency quantiles, means, and
        derived ratios are left as measured on the simulated prefix --
        steady state is precisely the regime where they have stopped
        moving.  The simulated truth stays observable in ``extra``.
        """
        simulated = result.requests_completed
        result.extra["early_stop_simulated_requests"] = float(simulated)
        result.extra["early_stop_converged"] = float(monitor.converged)
        if not monitor.converged or simulated <= 0:
            return result
        if total_requests > simulated:
            factor = total_requests / simulated
            result.execution_time_ns = int(
                round(result.execution_time_ns * factor)
            )
            result.energy_mj *= factor
            result.requests_completed = total_requests
            if result.execution_time_ns > 0:
                result.iops = (
                    total_requests * NS_PER_S / result.execution_time_ns
                )
        return result

    def _account_energy(self) -> EnergyBreakdown:
        timings = self.config.timings
        return self.energy_accountant.account(
            reads=self.pipeline.reads_completed,
            programs=self.pipeline.programs_completed,
            erases=self.pipeline.erases_completed,
            read_ns=timings.read_ns,
            program_ns=timings.program_ns,
            erase_ns=timings.erase_ns,
            fabric_stats=self.fabric.stats,
            execution_time_ns=max(1, self.metrics.execution_time_ns),
        )
