"""SSD device assembly: configuration + design -> runnable simulated SSD."""

from repro.ssd.factory import build_fabric, design_names
from repro.ssd.device import SsdDevice

__all__ = ["build_fabric", "design_names", "SsdDevice"]
