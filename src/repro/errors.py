"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An SSD / network / workload configuration is inconsistent."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class NandProtocolError(ReproError):
    """A flash command violated the NAND command protocol.

    Examples: programming a page that was never erased, reading a page that
    was never programmed when strict mode is enabled, erasing at non-block
    granularity.
    """


class MappingError(ReproError):
    """The FTL mapping tables were driven into an inconsistent state."""


class GarbageCollectionError(ReproError):
    """Garbage collection could not make forward progress."""


class RoutingError(ReproError):
    """An interconnection-network routing invariant was violated."""


class ReservationError(RoutingError):
    """A circuit reservation request was malformed or double-booked."""


class WorkloadError(ReproError):
    """A trace or synthetic workload definition is invalid."""
