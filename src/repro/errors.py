"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An SSD / network / workload configuration is inconsistent."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class NandProtocolError(ReproError):
    """A flash command violated the NAND command protocol.

    Examples: programming a page that was never erased, reading a page that
    was never programmed when strict mode is enabled, erasing at non-block
    granularity.
    """


class MappingError(ReproError):
    """The FTL mapping tables were driven into an inconsistent state."""


class GarbageCollectionError(ReproError):
    """Garbage collection could not make forward progress."""


class RoutingError(ReproError):
    """An interconnection-network routing invariant was violated."""


class ReservationError(RoutingError):
    """A circuit reservation request was malformed or double-booked."""


class WorkloadError(ReproError):
    """A trace or synthetic workload definition is invalid."""


class SpecRunError(ReproError):
    """One spec's isolated execution failed (timeout, crash, or exception).

    ``digest`` identifies the offending spec, ``reason`` is one of
    ``"timeout"`` / ``"crash"`` / ``"exception"``, and ``detail`` carries
    the captured traceback or exit diagnostics.
    """

    def __init__(self, digest: str, label: str, reason: str, detail: str):
        super().__init__(f"{label} ({digest[:12]}) {reason}: {detail}")
        self.digest = digest
        self.label = label
        self.reason = reason
        self.detail = detail


class ExecutionError(ReproError):
    """A batch finished with per-spec failures (the rest completed).

    Raised by :func:`repro.experiments.executor.execute_specs` after every
    healthy spec has executed and been persisted: ``failures`` lists one
    :class:`SpecRunError` per failed spec, so a single hung or crashing
    cell never silently discards the remainder of a sweep.
    """

    def __init__(self, failures):
        self.failures = list(failures)
        lines = "; ".join(str(failure) for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} spec(s) failed to execute: {lines}"
        )


class QueueError(ReproError):
    """A work-queue invariant was violated or queued tasks dead-lettered."""


class ServiceError(ReproError):
    """A control-plane invariant was violated (illegal job transition,
    malformed service state, unusable bind address).

    Client-side problems -- a malformed ``POST /v1/runs`` body -- are *not*
    this error: they surface as :class:`ConfigurationError` (or another
    library error) and the HTTP layer maps them to structured 400
    responses.  ``ServiceError`` marks bugs and corruption on the server
    side, which map to 500s.
    """
