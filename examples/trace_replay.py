#!/usr/bin/env python3
"""Trace replay end to end: parse a real-format trace, replay it, cache it.

Walks the whole trace subsystem:

1. writes a tiny MSR-Cambridge-format CSV (the format the paper's largest
   workload family ships in),
2. streams it through the format readers (detection, row validation,
   canonical content digest),
3. replays it on a Venice-fabric device via ``TraceWorkload``,
4. builds a trace-backed ``RunSpec`` and shows that a second execution is
   bit-identical and a warm result store serves it without simulating.

Run:  PYTHONPATH=src python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.experiments.executor import SerialExecutor, execute_specs
from repro.experiments.spec import ExperimentScale, make_spec
from repro.experiments.store import ResultStore
from repro.workloads import TraceWorkload, detect_format, trace_digest

# A dozen MSR rows: filetime ticks, host, disk, type, offset, size, response.
MSR_ROWS = """\
128166372003061629,hm,0,Read,383496192,32768,413
128166372003766629,hm,0,Write,310378496,8192,512
128166372004376629,hm,0,Read,383528960,16384,398
128166372005061629,hm,0,Read,92165120,4096,287
128166372006161629,hm,0,Write,310386688,8192,477
128166372007061629,hm,0,Read,383545344,32768,421
128166372008561629,hm,0,Write,401768448,4096,387
128166372009061629,hm,0,Read,92169216,4096,301
128166372010761629,hm,0,Read,383578112,65536,502
128166372011061629,hm,0,Write,310394880,8192,455
128166372012461629,hm,0,Read,92173312,8192,318
128166372013061629,hm,0,Write,401772544,4096,369
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        trace_file = Path(scratch) / "hm_tiny.csv"
        trace_file.write_text(MSR_ROWS)

        # 1-2. Detect and digest: the digest covers parsed records, so it
        # is identical for this file, its .gz copy, or its converted CSV.
        fmt = detect_format(trace_file)
        digest = trace_digest(trace_file)
        print(f"format  : {fmt.name} ({fmt.description})")
        print(f"digest  : {digest[:32]}…")

        # 3. Replay through the generator interface (offsets are remapped
        # into the footprint, arrivals normalized to t=0).
        workload = TraceWorkload(trace_file)
        trace = workload.generate(count=12, footprint_bytes=64 << 20)
        print(f"trace   : {trace.characteristics()}")

        # 4. Spec-level replay: content-addressed, cache-aware.
        scale = ExperimentScale(requests=12, blocks_per_plane=8, pages_per_block=8)
        spec = make_spec("venice", "performance-optimized",
                         f"trace:{trace_file}", scale)
        print(f"spec    : {spec.label()}  digest {spec.digest[:16]}…")

        first = spec.execute().to_dict()
        second = spec.execute().to_dict()
        print(f"deterministic replay: {first == second}")

        store = ResultStore(Path(scratch) / "store")
        execute_specs([spec], store=store)
        warm = SerialExecutor()
        result = execute_specs([spec], executor=warm, store=store)[spec]
        print(f"warm-cache simulations: {warm.runs_completed}")
        print(f"p99 latency: {result.p99_latency_ns / 1e3:.1f} us "
              f"({result.requests_completed} requests replayed)")


if __name__ == "__main__":
    main()
