#!/usr/bin/env python3
"""Multi-tenant mixed workloads (Table 3 / Figure 12).

"Real-world scenarios, where multiple workloads access the same SSD":
three tenants -- a write-heavy proxy (prxy_0), a read-heavy source volume
(src2_1), and a mixed user volume (usr_0) -- share one device through
separate NVMe queue pairs.  The default is the paper's mix2 (three
read-intensive tenants); pass mix1..mix6 to try the others.

Run:  python examples/multi_tenant_mix.py [mix1..mix6]
"""

import sys

from repro.config.ssd_config import DesignKind
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    ExperimentScale,
    build_config,
    run_design_suite,
    trace_for,
)
from repro.workloads.mixes import MIX_CATALOG


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "mix2"
    spec = MIX_CATALOG[mix_name]
    print(f"{mix_name}: {spec.description}")
    print(f"constituents: {', '.join(spec.constituents)}\n")

    scale = ExperimentScale(
        requests_per_mix_constituent=150, blocks_per_plane=16, pages_per_block=16
    )
    config = build_config("performance-optimized", scale)
    trace = trace_for(mix_name, config, scale, mix=True)

    designs = (
        DesignKind.BASELINE,
        DesignKind.PSSD,
        DesignKind.NOSSD,
        DesignKind.VENICE,
        DesignKind.IDEAL,
    )
    results = run_design_suite(config, trace, scale, designs)
    baseline = results["baseline"]
    rows = [
        [
            name,
            result.speedup_over(baseline),
            result.p99_latency_ns / 1e3,
            f"{result.conflict_fraction:.1%}",
        ]
        for name, result in results.items()
    ]
    print(
        format_table(
            ["design", "speedup", "p99 (us)", "conflicts"],
            rows,
            title=f"{mix_name} ({len(trace)} requests, "
            f"{trace.mean_interarrival_us:.1f} us mean inter-arrival)",
        )
    )
    print(
        "\nMixes concentrate several tenants' bursts onto one fabric; the"
        "\npaper's Figure 12 shows Venice's conflict-free scheduling paying"
        "\noff most under exactly this pressure."
    )


if __name__ == "__main__":
    main()
