#!/usr/bin/env python3
"""Compare all six SSD designs on a read-intensive enterprise workload.

Reproduces the paper's core comparison (Figure 9 methodology) on a single
workload: Baseline, pSSD, pnSSD, NoSSD, Venice, and the ideal
path-conflict-free SSD all replay the same accelerated ``proj_3`` trace
(95% reads -- the class of workload path conflicts hurt most, §3.1).

Run:  python examples/design_comparison.py [workload]
"""

import sys

from repro.config.ssd_config import DesignKind
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    ALL_DESIGNS,
    ExperimentScale,
    build_config,
    channel_pressure,
    run_design_suite,
    trace_for,
)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "proj_3"
    scale = ExperimentScale(
        requests=400, blocks_per_plane=16, pages_per_block=16
    )
    config = build_config("performance-optimized", scale)
    trace = trace_for(workload, config, scale)
    print(
        f"Replaying {len(trace)} requests of {workload} "
        f"(channel pressure {channel_pressure(trace, config):.2f}x) "
        f"on {config.name}...\n"
    )

    results = run_design_suite(config, trace, scale, ALL_DESIGNS)
    baseline = results[DesignKind.BASELINE.value]

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.speedup_over(baseline),
                result.iops,
                result.mean_latency_ns / 1e3,
                result.p99_latency_ns / 1e3,
                f"{result.conflict_fraction:.1%}",
                result.energy_mj,
            ]
        )
    print(
        format_table(
            ["design", "speedup", "IOPS", "mean (us)", "p99 (us)",
             "conflicts", "energy (mJ)"],
            rows,
            title=f"{workload} across all designs",
        )
    )
    print(
        "\nReading the table: the ideal SSD bounds what eliminating path"
        "\nconflicts can buy; Venice approaches it with an 8x8 router mesh,"
        "\nwhile pSSD/pnSSD/NoSSD recover less of the gap (paper Figure 9)."
    )


if __name__ == "__main__":
    main()
