#!/usr/bin/env python3
"""Quickstart: simulate one workload on a Venice SSD and print its metrics.

Builds the paper's performance-optimized SSD (Table 1) at a reduced
per-plane capacity (the 8x8 chip array -- what determines path-conflict
behaviour -- is kept intact), synthesises the MSR Cambridge ``hm_0``
workload from its published Table 2 characteristics, and replays it on a
Venice-fabric device.

Run:  python examples/quickstart.py
"""

from repro import DesignKind, SsdDevice, performance_optimized
from repro.workloads import generate_workload


def main() -> None:
    config = performance_optimized(blocks_per_plane=16, pages_per_block=16)
    print(f"SSD configuration: {config.describe()}")

    trace = generate_workload(
        "hm_0",
        count=400,
        footprint_bytes=config.geometry.capacity_bytes // 2,
        seed=42,
    )
    print(f"Workload: {trace.characteristics()}")

    device = SsdDevice(config, DesignKind.VENICE)
    result = device.run_trace(trace.requests, "hm_0")

    print(f"\nResults for {result.design} on {result.workload}:")
    print(f"  requests completed : {result.requests_completed}")
    print(f"  execution time     : {result.execution_time_ns / 1e6:.2f} ms")
    print(f"  throughput         : {result.iops:,.0f} IOPS")
    print(f"  mean latency       : {result.mean_latency_ns / 1e3:.1f} us")
    print(f"  p99 latency        : {result.p99_latency_ns / 1e3:.1f} us")
    print(f"  path conflicts     : {result.conflict_fraction:.2%} of requests")
    print(f"  energy             : {result.energy_mj:.2f} mJ")
    print(f"  average power      : {result.average_power_mw:.0f} mW")

    fabric = device.fabric
    print(f"\nVenice fabric internals:")
    print(f"  circuits reserved  : {fabric.network.reservations}")
    print(f"  scout failures     : {fabric.network.failed_reservations}")
    print(f"  non-minimal paths  : {fabric.network.non_minimal_circuits}")
    print(f"  mean circuit hops  : {fabric.mean_circuit_hops():.2f}")
    print(f"  first-try success  : {fabric.first_try_success_fraction:.2%}")


if __name__ == "__main__":
    main()
