#!/usr/bin/env python3
"""Tail-latency analysis: how path conflicts inflate the p99 (Figure 11).

Replays ``src1_0`` (mixed read/write, large requests) on the baseline and
Venice devices, then prints the tail of the latency CDF side by side --
the view the paper uses to show Venice cutting the 99th percentile.

Run:  python examples/tail_latency_analysis.py
"""

from repro.config.ssd_config import DesignKind
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    ExperimentScale,
    build_config,
    run_workload_on,
    trace_for,
)


def main() -> None:
    scale = ExperimentScale(requests=500, blocks_per_plane=16, pages_per_block=16)
    config = build_config("performance-optimized", scale)
    trace = trace_for("src1_0", config, scale)

    print(f"Replaying {len(trace)} requests of src1_0 on {config.name}...\n")
    runs = {
        design.value: run_workload_on(design, config, trace, scale, with_cdf=True)
        for design in (DesignKind.BASELINE, DesignKind.NOSSD, DesignKind.VENICE)
    }

    fractions = [point[1] for point in runs["baseline"].tail_cdf]
    rows = []
    for index, fraction in enumerate(fractions):
        if index % 10 != 0 and fraction != fractions[-1]:
            continue
        rows.append(
            [f"p{fraction * 100:.1f}"]
            + [runs[name].tail_cdf[index][0] / 1e3 for name in runs]
        )
    print(
        format_table(
            ["percentile"] + [f"{name} (us)" for name in runs],
            rows,
            title="Latency CDF tail (Figure 11 view)",
        )
    )

    base_p99 = runs["baseline"].p99_latency_ns
    for name, run in runs.items():
        if name == "baseline":
            continue
        change = 1.0 - run.p99_latency_ns / base_p99
        print(f"\n{name}: p99 {change:+.1%} vs baseline")


if __name__ == "__main__":
    main()
