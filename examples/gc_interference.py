#!/usr/bin/env python3
"""Garbage-collection interference on an aged device (paper §8).

Fills the device completely (logical space), then overwrites a small logical range until
garbage collection must run.  GC's valid-page migrations travel the same
communication fabric as host I/O -- the paper's §8 argues Venice's path
diversity lets both proceed in parallel where the baseline's shared buses
serialize them.

Run:  python examples/gc_interference.py
"""

from repro.config.ssd_config import DesignKind
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentScale, build_config, make_device
from repro.hil.request import IoKind, IoRequest


def overwrite_trace(page_size: int, count: int = 512):
    # A pseudo-random walk over a 640-page region: old copies die scattered
    # across many blocks, so GC victims are partially valid and must migrate
    # live pages before erasing.
    requests = []
    t = 0
    for index in range(count):
        requests.append(
            IoRequest(
                kind=IoKind.WRITE,
                offset_bytes=((index * 37) % 256) * page_size,
                size_bytes=page_size,
                arrival_ns=t,
            )
        )
        t += 5_000
    return requests


def main() -> None:
    scale = ExperimentScale(blocks_per_plane=8, pages_per_block=8)
    config = build_config("performance-optimized", scale)
    page = config.geometry.page_size

    rows = []
    for design in (DesignKind.BASELINE, DesignKind.VENICE, DesignKind.IDEAL):
        device = make_device(config, design, scale)
        filled = device.precondition(1.0)
        result = device.run_trace(overwrite_trace(page), f"gc-{design.value}")
        rows.append(
            [
                design.value,
                result.execution_time_ns / 1e6,
                result.p99_latency_ns / 1e3,
                device.gc.blocks_reclaimed,
                device.gc.pages_migrated,
            ]
        )
        device.ftl.assert_consistent()  # GC lost nothing

    print(f"Device fully preconditioned ({filled} pages) before each run.\n")
    print(
        format_table(
            ["design", "execution (ms)", "p99 (us)", "blocks reclaimed",
             "pages migrated"],
            rows,
            title="Overwrite-heavy workload with live garbage collection",
        )
    )
    print(
        "\nGC migrations (internal reads + programs) contend with host"
        "\nwrites for paths; the FTL state stays consistent throughout"
        "\n(checked by assert_consistent after each run)."
    )


if __name__ == "__main__":
    main()
